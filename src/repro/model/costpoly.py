"""Symbolic cost polynomials.

`LoopCost` values are polynomials in the symbolic problem sizes with
rational coefficients — e.g. matrix multiply's column totals
``2n^3 + n^2`` and ``1/2 n^3 + n^2`` from Figure 2 of the paper. A
:class:`CostPoly` supports exact arithmetic, evaluation, and the paper's
"compare dominating terms" ordering for symbolic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.errors import ReproError
from repro.ir.affine import Affine

__all__ = ["CostPoly"]

#: A monomial is a sorted tuple of (symbol, exponent) pairs; () is 1.
Monomial = tuple[tuple[str, int], ...]

#: Symbols are compared by evaluating at this magnitude; large enough that
#: the dominating term decides, per the paper's §4.1.
_DOMINANT_MAGNITUDE = 10**6


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: dict[str, int] = dict(a)
    for name, exp in b:
        powers[name] = powers.get(name, 0) + exp
    return tuple(sorted((n, e) for n, e in powers.items() if e))


@dataclass(frozen=True)
class CostPoly:
    """An immutable polynomial with Fraction coefficients."""

    terms: tuple[tuple[Monomial, Fraction], ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(terms: Mapping[Monomial, Fraction]) -> "CostPoly":
        clean = tuple(
            sorted((m, Fraction(c)) for m, c in terms.items() if c != 0)
        )
        return CostPoly(clean)

    @staticmethod
    def constant(value: "Fraction | int") -> "CostPoly":
        return CostPoly.build({(): Fraction(value)})

    @staticmethod
    def symbol(name: str) -> "CostPoly":
        return CostPoly.build({((name, 1),): Fraction(1)})

    @staticmethod
    def from_affine(form: Affine) -> "CostPoly":
        terms: dict[Monomial, Fraction] = {(): Fraction(form.const)}
        for name, coeff in form.terms:
            terms[((name, 1),)] = terms.get(((name, 1),), Fraction(0)) + coeff
        return CostPoly.build(terms)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _dict(self) -> dict[Monomial, Fraction]:
        return dict(self.terms)

    def __add__(self, other: "CostPoly | int") -> "CostPoly":
        other = _coerce(other)
        out = self._dict()
        for mono, coeff in other.terms:
            out[mono] = out.get(mono, Fraction(0)) + coeff
        return CostPoly.build(out)

    __radd__ = __add__

    def __sub__(self, other: "CostPoly | int") -> "CostPoly":
        return self + (_coerce(other) * -1)

    def __mul__(self, other: "CostPoly | int | Fraction") -> "CostPoly":
        if isinstance(other, (int, Fraction)):
            return CostPoly.build({m: c * other for m, c in self.terms})
        out: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                mono = _mono_mul(m1, m2)
                out[mono] = out.get(mono, Fraction(0)) + c1 * c2
        return CostPoly.build(out)

    __rmul__ = __mul__

    def __truediv__(self, k: "int | Fraction") -> "CostPoly":
        if k == 0:
            raise ReproError("division of cost polynomial by zero")
        return self * (Fraction(1) / Fraction(k))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(m == () for m, _ in self.terms)

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ReproError(f"{self} is not constant")
        return self.terms[0][1] if self.terms else Fraction(0)

    @property
    def degree(self) -> int:
        if not self.terms:
            return 0
        return max(sum(e for _, e in m) for m, _ in self.terms)

    def dominant_term(self) -> tuple[Monomial, Fraction]:
        """The highest-total-degree term (ties broken lexicographically)."""
        if not self.terms:
            return ((), Fraction(0))
        return max(self.terms, key=lambda t: (sum(e for _, e in t[0]), t[0]))

    def evaluate(self, env: Mapping[str, "int | float"]) -> float:
        """Numeric value with every symbol bound."""
        total = 0.0
        for mono, coeff in self.terms:
            value = float(coeff)
            for name, exp in mono:
                if name not in env:
                    raise ReproError(f"unbound symbol {name!r} in {self}")
                value *= float(env[name]) ** exp
            total += value
        return total

    def magnitude(self) -> float:
        """Comparison key: value with every symbol at a large magnitude.

        Constants compare exactly; symbolic terms dominate according to
        their degree — the paper's dominating-term comparison.
        """
        env: dict[str, int] = {}
        for mono, _ in self.terms:
            for name, _exp in mono:
                env.setdefault(name, _DOMINANT_MAGNITUDE)
        return self.evaluate(env)

    def ratio_to(self, other: "CostPoly") -> float:
        """Numeric ratio self/other at the dominant magnitude."""
        denom = other.magnitude()
        if denom == 0:
            raise ReproError("ratio to a zero cost")
        return self.magnitude() / denom

    # ------------------------------------------------------------------
    # Display: "5/2 n^3 + n^2 + 2"
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return "0"
        ordered = sorted(
            self.terms,
            key=lambda t: (sum(e for _, e in t[0]), t[0]),
            reverse=True,
        )
        parts = []
        for mono, coeff in ordered:
            body = "*".join(
                name if exp == 1 else f"{name}^{exp}" for name, exp in mono
            )
            if not body:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(body)
            elif coeff == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coeff} {body}")
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostPoly({self})"


def _coerce(value: "CostPoly | int | Fraction") -> CostPoly:
    if isinstance(value, CostPoly):
        return value
    return CostPoly.constant(value)
