"""The paper's cache cost model: RefGroup, RefCost, LoopCost, memory order.

Also home of the cost-oracle layer (:mod:`repro.model.oracle`): one
protocol for "how good is this program?" with an analytic-predictor
implementation (planning) and a cache-simulation implementation (ground
truth), plus the shared memo-cache layer (:mod:`repro.model.memo`).
"""

from repro.model.costpoly import CostPoly
from repro.model.loopcost import CONSECUTIVE, INVARIANT, NONE, CostModel
from repro.model.memo import MemoCache, cache_stats, registered_caches
from repro.model.nest import NestInfo, build_nest_info, trip_poly
from repro.model.oracle import (
    AnalyticOracle,
    CostOracle,
    OracleCost,
    SimulationOracle,
    canonical_key,
)
from repro.model.refgroup import GROUP_TEMPORAL_MAX_DISTANCE, RefGroup, ref_groups

__all__ = [
    "AnalyticOracle",
    "CONSECUTIVE",
    "CostModel",
    "CostOracle",
    "CostPoly",
    "GROUP_TEMPORAL_MAX_DISTANCE",
    "INVARIANT",
    "MemoCache",
    "NONE",
    "NestInfo",
    "OracleCost",
    "RefGroup",
    "SimulationOracle",
    "build_nest_info",
    "cache_stats",
    "canonical_key",
    "ref_groups",
    "registered_caches",
    "trip_poly",
]
