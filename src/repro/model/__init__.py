"""The paper's cache cost model: RefGroup, RefCost, LoopCost, memory order."""

from repro.model.costpoly import CostPoly
from repro.model.loopcost import CONSECUTIVE, INVARIANT, NONE, CostModel
from repro.model.nest import NestInfo, build_nest_info, trip_poly
from repro.model.refgroup import GROUP_TEMPORAL_MAX_DISTANCE, RefGroup, ref_groups

__all__ = [
    "CONSECUTIVE",
    "CostModel",
    "CostPoly",
    "GROUP_TEMPORAL_MAX_DISTANCE",
    "INVARIANT",
    "NONE",
    "NestInfo",
    "RefGroup",
    "build_nest_info",
    "ref_groups",
    "trip_poly",
]
