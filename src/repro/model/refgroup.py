"""RefGroup: partition references into reuse groups (paper §3.3).

Two references belong to the same reference group with respect to a
candidate inner loop ``l`` when:

1. there is a dependence δ between them and
   (a) δ is loop-independent, or
   (b) δ_l is a small constant d (|d| ≤ 2) and every other entry is zero
   (group-temporal reuse); or
2. they reference the same array with identical subscripts except the
   first, which differs by at most the cache line size in elements
   (group-spatial reuse).

Input dependences participate: reuse between two reads is still reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.pairs import RefSite
from repro.model.nest import NestInfo
from repro.obs import get_obs

__all__ = ["RefGroup", "ref_groups", "GROUP_TEMPORAL_MAX_DISTANCE"]

#: The paper's |d| <= 2 threshold for condition 1(b).
GROUP_TEMPORAL_MAX_DISTANCE = 2


@dataclass(frozen=True)
class RefGroup:
    """One reference group with its deepest-nesting representative."""

    members: tuple[RefSite, ...]
    representative: RefSite
    has_group_spatial: bool

    @property
    def size(self) -> int:
        return len(self.members)


class _UnionFind:
    def __init__(self, keys):
        self.parent = {k: k for k in keys}

    def find(self, key):
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def ref_groups(
    info: NestInfo,
    loop_var: str,
    cls: int,
    temporal_max: int = GROUP_TEMPORAL_MAX_DISTANCE,
) -> list[RefGroup]:
    """Partition ``info.sites`` into reference groups w.r.t. ``loop_var``."""
    keys = [(s.sid, s.slot) for s in info.sites]
    site_of = {(s.sid, s.slot): s for s in info.sites}
    uf = _UnionFind(keys)
    spatial_pairs: list[tuple[tuple, tuple]] = []

    # Condition 1: group-temporal reuse via dependences.
    for dep in info.deps:
        a = (dep.source.sid, dep.source.slot)
        b = (dep.sink.sid, dep.sink.slot)
        if a not in site_of or b not in site_of:
            continue
        if _condition_one(dep, loop_var, temporal_max):
            uf.union(a, b)

    # Condition 2: group-spatial reuse, purely syntactic.
    sites = list(info.sites)
    by_array: dict[str, list[RefSite]] = {}
    for site in sites:
        by_array.setdefault(site.ref.array, []).append(site)
    for group in by_array.values():
        for i, s1 in enumerate(group):
            for s2 in group[i + 1 :]:
                if _condition_two(s1, s2, cls):
                    key1, key2 = (s1.sid, s1.slot), (s2.sid, s2.slot)
                    uf.union(key1, key2)
                    # Only *distinct* cache-line neighbours count as
                    # group-spatial; identical subscripts are temporal.
                    if s1.ref.subs != s2.ref.subs:
                        spatial_pairs.append((key1, key2))

    buckets: dict[tuple, list[RefSite]] = {}
    for key in keys:
        buckets.setdefault(uf.find(key), []).append(site_of[key])

    groups = []
    for members in buckets.values():
        member_keys = {(s.sid, s.slot) for s in members}
        rep = max(members, key=lambda s: (info.site_depth(s), -s.slot))
        groups.append(
            RefGroup(
                tuple(members),
                rep,
                has_group_spatial=any(
                    a in member_keys and b in member_keys
                    for a, b in spatial_pairs
                ),
            )
        )
    groups.sort(key=lambda g: (g.representative.sid, g.representative.slot))
    obs = get_obs()
    if obs.enabled:
        size_histogram = obs.metrics.histogram("model.refgroup.size")
        for group in groups:
            size_histogram.record(group.size)
        obs.metrics.counter("model.refgroup.partitions").inc()
    return groups


def _condition_one(dep, loop_var: str, temporal_max: int) -> bool:
    if dep.source.ref.array != dep.sink.ref.array:
        return False
    # The paper's formulation is "slightly more restrictive than uniformly
    # generated references": only references whose subscripts differ by
    # constants share uniform reuse. Dependences between non-uniform pairs
    # (e.g. A(I,K) vs A(J,K) at the triangular boundary J=I) exist but do
    # not constitute group reuse.
    if not _uniformly_generated(dep.source.ref, dep.sink.ref):
        return False
    if dep.vector.is_loop_independent():
        return True
    if loop_var not in dep.loop_vars:
        return False
    idx = dep.loop_vars.index(loop_var)
    entry = dep.vector[idx]
    if not dep.vector.zero_except(idx):
        return False
    if entry == "*":
        # The dependence holds at every distance, including small ones.
        return True
    return isinstance(entry, int) and abs(entry) <= temporal_max


def _uniformly_generated(r1, r2) -> bool:
    """Subscripts differ only by constants in every dimension."""
    if r1.rank != r2.rank:
        return False
    return all((a - b).is_constant() for a, b in zip(r1.subs, r2.subs))


def _condition_two(s1: RefSite, s2: RefSite, cls: int) -> bool:
    r1, r2 = s1.ref, s2.ref
    if r1.array != r2.array or r1.rank != r2.rank or r1.rank == 0:
        return False
    for d in range(1, r1.rank):
        if r1.subs[d] != r2.subs[d]:
            return False
    diff = r1.subs[0] - r2.subs[0]
    return diff.is_constant() and abs(diff.const) <= cls
