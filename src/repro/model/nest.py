"""Nest-level context shared by the cost model: loops, sites, trips, deps.

A :class:`NestInfo` is built once per candidate nest and caches everything
`RefGroup`/`LoopCost` need: the loops of the nest, every reference
occurrence, the enclosing-loop chain per statement, the dependence set
(including input dependences, which carry reuse information), and symbolic
trip-count polynomials (triangular bounds are resolved to their extreme
values so that dominating-term comparisons work, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.ir.affine import Affine
from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import enclosing_loops, iter_loops, iter_statements
from repro.dependence.pairs import Dependence, RefSite, region_dependences
from repro.model.costpoly import CostPoly

__all__ = ["NestInfo", "build_nest_info", "nest_structure", "trip_poly"]


@dataclass
class NestInfo:
    """Cached analysis context for one loop nest (or whole program).

    ``outer`` holds enclosing context loops (outermost first) that are not
    candidates themselves but whose index variables may appear in the
    nest's bounds — trip counts resolve through them so that e.g. a
    ``K+1..N`` loop nested in ``DO K = 1, N`` counts as ~``N`` rather than
    carrying an opaque ``K``.
    """

    root: "Loop | Program"
    loops: tuple[Loop, ...]
    chains: dict[int, tuple[Loop, ...]]  # sid -> enclosing loops
    sites: tuple[RefSite, ...]
    deps: tuple[Dependence, ...]
    outer: tuple[Loop, ...] = ()

    @cached_property
    def loop_by_var(self) -> dict[str, Loop]:
        return {loop.var: loop for loop in self.outer + self.loops}

    @cached_property
    def trips(self) -> dict[str, CostPoly]:
        """Symbolic trip-count polynomial per loop var (context included)."""
        return {
            loop.var: trip_poly(loop, self.loop_by_var)
            for loop in self.outer + self.loops
        }

    def statements(self) -> tuple[Assign, ...]:
        return tuple(iter_statements(self.root))

    def chain_vars(self, sid: int) -> tuple[str, ...]:
        return tuple(l.var for l in self.chains[sid])

    def site_depth(self, site: RefSite) -> int:
        return len(self.chains[site.sid])


def nest_structure(
    root: "Loop | Program",
) -> tuple[tuple[Loop, ...], dict[int, tuple[Loop, ...]], tuple[RefSite, ...]]:
    """The cheap tree-derived parts of a :class:`NestInfo`.

    Split out so a structurally cached dependence set can be re-packaged
    with loops/chains from the *caller's* tree — several consumers compare
    chain entries against their own loop objects by identity.
    """
    loops = tuple(iter_loops(root))
    chains = enclosing_loops(root)
    sites: list[RefSite] = []
    for stmt in iter_statements(root):
        for slot, ref in enumerate(stmt.refs):
            sites.append(RefSite(stmt.sid, slot, ref, is_write=(slot == 0)))
    return loops, chains, tuple(sites)


def build_nest_info(root: "Loop | Program", outer: tuple[Loop, ...] = ()) -> NestInfo:
    """Analyze ``root`` and package the results."""
    loops, chains, sites = nest_structure(root)
    deps = tuple(region_dependences(root, include_inputs=True))
    return NestInfo(root, loops, chains, sites, deps, tuple(outer))


def trip_poly(loop: Loop, loop_by_var: dict[str, Loop]) -> CostPoly:
    """Symbolic trip count of ``loop`` as a cost polynomial.

    Rectangular bounds give the exact affine trip ``(ub-lb+step)/step``.
    Triangular bounds (referencing outer loop indices) are resolved to the
    extreme of the span over the enclosing iteration space, matching the
    paper's use of the dominating term (e.g. every Cholesky loop counts as
    ``n``).
    """
    span = loop.ub - loop.lb + loop.step
    resolved = _extreme(span, loop_by_var, maximize=(loop.step > 0), seen=frozenset({loop.var}))
    if resolved.is_constant():
        # Exact Fortran trip count (floor division), clamped at zero.
        return CostPoly.constant(max(resolved.const // loop.step, 0))
    poly = CostPoly.from_affine(resolved) / loop.step
    return poly


def _extreme(
    form: Affine,
    loop_by_var: dict[str, Loop],
    maximize: bool,
    seen: frozenset[str],
) -> Affine:
    """Replace loop-variable terms with their extreme bound, recursively.

    Symbols (not loop variables) are left in place. ``seen`` breaks cycles
    defensively; validated programs cannot have them.
    """
    result = Affine.constant(form.const)
    for name, coeff in form.terms:
        loop = loop_by_var.get(name)
        if loop is None or name in seen:
            result = result + Affine.var(name, coeff)
            continue
        take_max = (coeff > 0) == maximize
        if loop.step > 0:
            bound = loop.ub if take_max else loop.lb
        else:
            bound = loop.lb if take_max else loop.ub
        resolved = _extreme(bound, loop_by_var, take_max, seen | {name})
        result = result + resolved * coeff
    return result
