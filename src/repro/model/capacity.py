"""Cache-capacity analysis for fusion decisions (paper §5.5 future work).

The paper observed that fusion occasionally *lowered* hit rates (Track,
Dnasa7, Wave) because "our fusion algorithm only attempts to optimize
reuse at the innermost loop level, it may sometimes merge array
references that interfere or overflow cache", and flagged capacity/
interference analysis [LRW91] as future work. This module implements the
capacity side: an estimate of the cache footprint of one full sweep of a
nest's innermost loop, used to veto fusions whose merged working set
cannot fit.

The estimate follows the cost model's own vocabulary: per reference
group, an innermost sweep touches

* 1 line          — loop-invariant references,
* trip/(cls/stride) lines — consecutive references,
* trip lines      — non-contiguous references,

so the footprint is LoopCost restricted to the innermost loop (no outer
trip products), converted to bytes.
"""

from __future__ import annotations

from repro.ir.nodes import Loop
from repro.model.loopcost import CostModel

__all__ = ["inner_loop_footprint", "fits_in_cache"]


def inner_loop_footprint(
    nest: Loop,
    model: CostModel,
    line_bytes: int,
    env: dict | None = None,
) -> float:
    """Estimated bytes touched by one sweep of each innermost loop.

    Symbolic trips are evaluated with the provided parameter environment
    when possible, else at the dominant magnitude (which makes oversized
    symbolic nests correctly look enormous).
    """
    info = model.nest_info(nest)
    total_lines = 0.0
    for inner in _innermost(nest):
        for group in model.groups(nest, inner.var):
            rep = group.representative
            chain = info.chains[rep.sid]
            if not chain or chain[-1] is not inner:
                continue
            cost = model.ref_cost(info, rep.ref, inner)
            try:
                total_lines += cost.evaluate(env or {})
            except Exception:
                total_lines += cost.magnitude()
    return total_lines * line_bytes


def fits_in_cache(
    nest: Loop,
    model: CostModel,
    cache_bytes: int,
    line_bytes: int,
    env: dict | None = None,
) -> bool:
    """Does the innermost working set fit (with headroom for conflicts)?

    A 2x headroom factor stands in for associativity conflicts — the
    paper's "interference" — without a full [LRW91]-style analysis.
    """
    return inner_loop_footprint(nest, model, line_bytes, env) * 2 <= cache_bytes


def _innermost(nest: Loop) -> list[Loop]:
    out: list[Loop] = []

    def walk(loop: Loop) -> None:
        inner = [i for i in loop.body if isinstance(i, Loop)]
        if not inner:
            out.append(loop)
        for item in inner:
            walk(item)

    walk(nest)
    return out
