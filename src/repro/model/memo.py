"""Shared memoization layer for the pipeline's analysis caches.

PR 3 introduced three ad-hoc memo dictionaries — the dependence
pair-test cache, the structural nest-dependence cache, and the per-model
loop-cost cache — each with its own clear-at-cap valve and hand-rolled
hit/miss counters. This module promotes them into one abstraction:

* :class:`MemoCache` — a bounded mapping with LRU eviction (instead of
  wholesale clearing at the cap, so a long autotuning run keeps its hot
  entries), per-cache ``<name>.hits`` / ``<name>.misses`` /
  ``<name>.evictions`` counters emitted through :mod:`repro.obs` (and
  therefore surfaced by every CLI's ``--metrics`` flag);
* a process-wide registry (:func:`registered_caches`,
  :func:`cache_stats`) covering the named module-level caches, so tools
  can inspect every cache at once.

The autotuner's canonical-nest prediction cache
(:mod:`repro.model.oracle`) builds on the same class, and the layer is
the seed of the planned compile-server result cache (ROADMAP item 1):
content-addressed keys in, evictable stats-exporting storage out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.obs import get_obs

__all__ = ["MemoCache", "registered_caches", "cache_stats"]

#: Default size valve, matching the PR 3 caches it replaces.
DEFAULT_CAP = 4096

#: name -> cache, for the module-level shared caches only (per-instance
#: caches pass ``register=False`` so the registry never pins a dead
#: CostModel alive).
_REGISTRY: "OrderedDict[str, MemoCache]" = OrderedDict()


class MemoCache:
    """A bounded memo dictionary with LRU eviction and obs counters.

    ``get`` counts a hit or a miss (and refreshes recency); ``put``
    inserts and evicts the least-recently-used entry once ``cap`` is
    reached. Keys follow ordinary dict semantics (hash + equality), so
    structural keys built from frozen IR values behave exactly as they
    did in the plain-dict caches this class replaces.

    Every operation (data mutation *and* counter update) runs under one
    re-entrant lock, so a cache shared between threads — the compile
    server's result cache, or oracles queried from executor threads —
    conserves its counters exactly: ``hits + misses`` always equals the
    number of counted lookups, and eviction accounting never tears.
    Cross-*process* stats stay consistent through the obs shard-merge
    path (each worker's counters merge exactly once; see
    ``repro.experiments.common.run_sharded``).
    """

    __slots__ = ("name", "cap", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, name: str, cap: int = DEFAULT_CAP, register: bool = True):
        if cap <= 0:
            raise ValueError(f"cache cap must be positive, got {cap}")
        self.name = name
        self.cap = cap
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        if register:
            _REGISTRY[name] = self

    # ------------------------------------------------------------------
    # Mapping surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Counted lookup: a hit refreshes the entry's recency."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                obs = get_obs()
                if obs.enabled:
                    obs.metrics.counter(f"{self.name}.misses").inc()
                return default
            self._data.move_to_end(key)
            self.hits += 1
            obs = get_obs()
            if obs.enabled:
                obs.metrics.counter(f"{self.name}.hits").inc()
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Uncounted lookup; neither counters nor recency change."""
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries at the cap."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.cap:
                self._data.popitem(last=False)
                self.evictions += 1
                obs = get_obs()
                if obs.enabled:
                    obs.metrics.counter(f"{self.name}.evictions").inc()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "size": len(self._data),
                "cap": self.cap,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoCache({self.name!r}, size={len(self._data)}/{self.cap}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def registered_caches() -> dict[str, MemoCache]:
    """The shared module-level caches, keyed by name."""
    return dict(_REGISTRY)


def cache_stats() -> list[dict]:
    """One stats row per registered cache (for --metrics style dumps)."""
    return [cache.stats() for cache in _REGISTRY.values()]
