"""RefCost and LoopCost (Figure 1) and memory order (§4.1).

``RefCost(ref, l)`` counts cache lines touched by one reference group's
representative over the iterations of candidate inner loop ``l``:

* ``1`` — loop invariant: no subscript mentions ``l``'s index;
* ``trip / (cls/stride)`` — consecutive: the index appears only in the
  first (fastest-varying) subscript with ``|stride| < cls``;
* ``trip`` — otherwise (no reuse).

``LoopCost(l)`` sums RefCost over all reference groups and multiplies by
the trips of the representative's other enclosing loops. ``memory_order``
ranks loops by descending LoopCost — cheapest loop innermost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.ir.expr import Ref
from repro.ir.nodes import Loop, Program
from repro.model.costpoly import CostPoly
from repro.model.memo import MemoCache
from repro.model.nest import NestInfo, build_nest_info, nest_structure
from repro.model.refgroup import GROUP_TEMPORAL_MAX_DISTANCE, RefGroup, ref_groups

__all__ = ["CostModel", "RefCostKind", "INVARIANT", "CONSECUTIVE", "NONE"]

INVARIANT = "invariant"
CONSECUTIVE = "consecutive"
NONE = "none"

RefCostKind = str

#: Cache size valve (entries are LRU-evicted past it; see repro.model.memo).
_CACHE_CAP = 4096

#: root (structural) -> dependence tuple, shared across CostModel
#: instances: dependences contain no loop objects and do not depend on the
#: model's parameters or the outer context, so structurally identical
#: nests (rebuilt trees, repeated experiment versions) reuse the expensive
#: region_dependences result.
_DEPS_CACHE = MemoCache("model.nestinfo.cache", cap=_CACHE_CAP)


@dataclass
class CostModel:
    """The paper's cache cost model.

    Args:
        cls: cache line size in array *elements* (the paper's figures use
            cls=4, i.e. 32-byte lines of REAL*8).
        temporal_max: |d| threshold of RefGroup condition 1(b).
    """

    cls: int = 4
    temporal_max: int = GROUP_TEMPORAL_MAX_DISTANCE
    # id(root/outer) -> (root, outer, info): identity fast path. The
    # objects are kept so a recycled id can never alias a dead tree.
    # Per-instance (unregistered) so the global cache registry never
    # pins a dead model alive.
    _info_cache: MemoCache = field(
        default_factory=lambda: MemoCache(
            "model.nestinfo.ident", cap=_CACHE_CAP, register=False
        ),
        repr=False,
    )
    # (root, outer, loop_var) structural -> CostPoly. Per-model: the
    # result depends on cls/temporal_max.
    _cost_cache: MemoCache = field(
        default_factory=lambda: MemoCache(
            "model.loopcost.cache", cap=_CACHE_CAP, register=False
        ),
        repr=False,
    )

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def nest_info(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> NestInfo:
        outer = tuple(outer)
        ident = (id(root),) + tuple(id(l) for l in outer)
        hit = self._info_cache.get(ident)
        if (
            hit is not None
            and hit[0] is root
            and len(hit[1]) == len(outer)
            and all(a is b for a, b in zip(hit[1], outer))
        ):
            return hit[2]
        deps = _DEPS_CACHE.get(root)
        if deps is None:
            info = build_nest_info(root, outer)
            _DEPS_CACHE.put(root, info.deps)
        else:
            # Structural hit: reuse the dependence set, but rebuild the
            # tree-derived parts from THIS root — consumers compare chain
            # entries against their own loop objects by identity.
            loops, chains, sites = nest_structure(root)
            info = NestInfo(root, loops, chains, sites, deps, outer)
        self._info_cache.put(ident, (root, outer, info))
        return info

    def groups(
        self, root: "Loop | Program", loop_var: str, outer: tuple[Loop, ...] = ()
    ) -> list[RefGroup]:
        return ref_groups(
            self.nest_info(root, outer), loop_var, self.cls, self.temporal_max
        )

    # ------------------------------------------------------------------
    # RefCost
    # ------------------------------------------------------------------
    def ref_cost_kind(self, ref: Ref, loop: Loop) -> RefCostKind:
        """Classify a reference w.r.t. a candidate inner loop (Figure 1)."""
        var = loop.var
        if all(sub.coeff(var) == 0 for sub in ref.subs):
            return INVARIANT
        stride = abs(loop.step * ref.subs[0].coeff(var))
        rest_invariant = all(sub.coeff(var) == 0 for sub in ref.subs[1:])
        if stride != 0 and stride < self.cls and rest_invariant:
            return CONSECUTIVE
        return NONE

    def ref_cost(self, info: NestInfo, ref: Ref, loop: Loop) -> CostPoly:
        """Cache lines accessed by ``ref`` over ``loop``'s iterations."""
        kind = self.ref_cost_kind(ref, loop)
        if kind == INVARIANT:
            return CostPoly.constant(1)
        trip = info.trips[loop.var]
        if kind == CONSECUTIVE:
            stride = abs(loop.step * ref.subs[0].coeff(loop.var))
            return trip * Fraction(stride, self.cls)
        return trip

    # ------------------------------------------------------------------
    # LoopCost
    # ------------------------------------------------------------------
    def loop_cost(
        self, root: "Loop | Program", loop_var: str, outer: tuple[Loop, ...] = ()
    ) -> CostPoly:
        """Total cache lines accessed with ``loop_var`` innermost.

        Memoized on the structural (root, outer, loop_var) key — the
        result is a pure value of the nest's shape and the model's
        parameters, so re-deriving a nest the pipeline has already costed
        (common across experiment versions) is a dictionary hit.
        """
        key = (root, tuple(outer), loop_var)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        info = self.nest_info(root, outer)
        loop = info.loop_by_var[loop_var]
        total = CostPoly.constant(0)
        for group in self.groups(root, loop_var, outer):
            rep = group.representative
            cost = self.ref_cost(info, rep.ref, loop)
            for enclosing in info.chains[rep.sid]:
                if enclosing.var != loop_var:
                    cost = cost * info.trips[enclosing.var]
            total = total + cost
        self._cost_cache.put(key, total)
        return total

    def loop_costs(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> dict[str, CostPoly]:
        """LoopCost for every loop of the nest, keyed by index var."""
        info = self.nest_info(root, outer)
        return {
            loop.var: self.loop_cost(root, loop.var, outer) for loop in info.loops
        }

    # ------------------------------------------------------------------
    # Memory order
    # ------------------------------------------------------------------
    def memory_order(
        self, root: "Loop | Program", outer: tuple[Loop, ...] = ()
    ) -> list[str]:
        """Loop vars ordered outermost-to-innermost by descending cost.

        Ties keep the loops' original relative order (stable), so an
        already-optimal nest maps to itself.
        """
        info = self.nest_info(root, outer)
        costs = self.loop_costs(root, outer)
        original = [loop.var for loop in info.loops]
        return sorted(original, key=lambda v: -costs[v].magnitude())

    def rank_permutations(self, root: "Loop | Program") -> list[tuple[str, ...]]:
        """All loop orders of a nest ranked cheapest-first by the model.

        The cost of an order is the LoopCost of its innermost loop — the
        paper's observation that the innermost loop dominates — with outer
        positions as tie-breakers.
        """
        import itertools

        info = self.nest_info(root)
        costs = self.loop_costs(root)
        orders = itertools.permutations([loop.var for loop in info.loops])
        return sorted(
            orders,
            key=lambda order: tuple(costs[v].magnitude() for v in reversed(order)),
        )
