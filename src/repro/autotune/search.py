"""Model-driven autotuning: beam search with the analytic cost oracle.

The driver jointly selects loop permutation × tile sizes ×
fusion/distribution for a whole program. The search never runs the
cache simulator: every candidate is scored by the planning oracle
(:class:`repro.model.oracle.AnalyticOracle` by default, milliseconds
per program), with the simulation oracle reserved for an optional
final top-k rerank sharded across worker processes.

Shape of the search:

1. seed the pool with the original program and the paper's compound
   algorithm output (so the result can never be worse than either);
2. for every fusion/distribution variant of the program, beam-search
   the top-level nests left to right — at each nest the options are the
   legal permutations and the capacity-seeded tilings from
   :mod:`repro.autotune.space` — keeping the ``beam`` cheapest whole
   programs per step;
3. every intermediate state is a complete program and joins the pool;
   the pool is deduped on canonical text and each distinct program is
   scored at most once (``budget`` caps distinct oracle evaluations);
4. the ranked pool is walked best-first through the lint fix-it
   verifier (execution equivalence + dependence coverage) and the first
   surviving candidate is the answer — the original program verifies
   trivially, so the walk always terminates with a config whose
   predicted misses are <= the original's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.ir.nodes import Loop, Program
from repro.model.loopcost import CostModel
from repro.model.oracle import (
    AnalyticOracle,
    CostOracle,
    OracleCost,
    SimulationOracle,
    canonical_key,
)
from repro.obs import get_obs
from repro.autotune.space import (
    Candidate,
    fusion_variants,
    nest_options,
    nest_slots,
)

__all__ = ["AutotuneResult", "autotune"]

#: Accesses cap for the simulation rerank (matches the locality bench).
SIM_MAX_ACCESSES = 1 << 25


@dataclass
class AutotuneResult:
    """Outcome of one autotuning run."""

    program: Program  # the original, untouched
    best: Candidate  # first verified candidate in predicted-miss order
    original: Candidate
    compound: Candidate
    ranked: tuple[Candidate, ...]  # whole pool, best predicted first
    evaluated: int  # distinct oracle evaluations spent
    generated: int  # configurations generated (pre-dedupe)
    budget: int
    budget_exhausted: bool
    elapsed_s: float  # whole search wall time
    eval_s: float  # time inside the planning oracle
    verified: bool
    verify_slug: str
    rejected: tuple[tuple[str, str], ...] = ()  # (describe, slug) failures
    sim_ranked: tuple[Candidate, ...] = ()  # top-k with sim costs
    sim_s: float = 0.0  # wall time of the rerank

    @property
    def generation_s(self) -> float:
        """Search time net of oracle evaluations (enumeration cost)."""
        return max(0.0, self.elapsed_s - self.eval_s)

    @property
    def improvement_pp(self) -> float:
        """Predicted miss-ratio improvement over the original, in points."""
        assert self.original.cost is not None and self.best.cost is not None
        return (
            self.original.cost.miss_ratio - self.best.cost.miss_ratio
        ) * 100.0


@dataclass
class _Evaluator:
    """Budgeted, memoized access to the planning oracle."""

    oracle: CostOracle
    budget: int
    evals: int = 0
    eval_s: float = 0.0
    generated: int = 0
    memo: dict = field(default_factory=dict)

    @property
    def exhausted(self) -> bool:
        return self.evals >= self.budget

    def cost(self, text: str, program: Program) -> OracleCost | None:
        cached = self.memo.get(text)
        if cached is not None:
            return cached
        if self.exhausted:
            return None
        start = time.perf_counter()
        cost = self.oracle.cost(program)
        self.eval_s += time.perf_counter() - start
        self.evals += 1
        self.memo[text] = cost
        return cost


def _rank_key(candidate: Candidate) -> tuple:
    assert candidate.cost is not None
    return (candidate.cost.misses, candidate.text)


def _sim_eval(
    program: Program, line: int, capacity: int, cls: int, max_accesses: int
) -> tuple[float, int, float]:
    """Sharded worker: simulated (misses, accesses, seconds) of a program."""
    oracle = SimulationOracle(
        model=CostModel(cls=cls),
        line=line,
        capacity=capacity,
        max_accesses=max_accesses,
    )
    start = time.perf_counter()
    cost = oracle.cost(program)
    return cost.misses, cost.accesses, time.perf_counter() - start


def autotune(
    program: Program,
    model: CostModel | None = None,
    oracle: CostOracle | None = None,
    line: int = 128,
    capacity: int = 512,
    budget: int = 128,
    beam: int = 4,
    topk: int = 5,
    max_orders: int = 6,
    max_tilings: int = 2,
    compare_sim: bool = False,
    jobs: int | None = None,
    verify: bool = True,
) -> AutotuneResult:
    """Search permutation × tiling × fusion space for ``program``.

    ``capacity`` is the FA-LRU cache capacity in lines; ``line`` the
    line size in bytes. The default planning oracle is an
    :class:`AnalyticOracle` at that geometry over a
    :class:`CostModel` with ``cls = line // 8`` (REAL*8 elements).
    ``budget`` caps *distinct* oracle evaluations; ``beam`` the number
    of states kept per nest step. With ``compare_sim`` the ``topk``
    best predicted candidates are reranked by the simulation oracle,
    sharded over ``jobs`` worker processes.
    """
    if model is None:
        model = oracle.model if oracle is not None else CostModel(
            cls=max(1, line // 8)
        )
    if oracle is None:
        oracle = AnalyticOracle(model=model, line=line, capacity=capacity)
    budget = max(2, budget)
    obs = get_obs()
    evaluator = _Evaluator(oracle, budget)
    pool: dict[str, Candidate] = {}
    start = time.perf_counter()

    def add(
        prog: Program, source: str, fusion: str, plans: tuple
    ) -> Candidate | None:
        evaluator.generated += 1
        text = canonical_key(prog)
        existing = pool.get(text)
        if existing is not None:
            return existing
        cost = evaluator.cost(text, prog)
        if cost is None:
            return None  # budget exhausted
        candidate = Candidate(prog, text, source, fusion, plans, cost)
        pool[text] = candidate
        return candidate

    with obs.span(
        "autotune", program=program.name, budget=budget, beam=beam
    ):
        original = add(program, "original", "none", ())
        assert original is not None  # budget >= 2

        from repro.transforms.compound import compound as run_compound

        with obs.span("autotune.compound"):
            compound_program = run_compound(program, oracle=oracle).program
        compound_cand = add(compound_program, "compound", "compound", ())
        if compound_cand is None:
            compound_cand = original

        cache_bytes = capacity * line
        env = program.param_env
        with obs.span("autotune.search"):
            for label, variant in fusion_variants(
                program, model, cache_capacity=(cache_bytes, line)
            ):
                base = add(variant, "search", label, ())
                if base is None:
                    break
                states = [base]
                for slot in nest_slots(variant):
                    expansions: list[Candidate] = []
                    for state in states:
                        item = state.program.body[slot]
                        if not isinstance(item, Loop):
                            expansions.append(state)
                            continue
                        for new_nest, plan in nest_options(
                            item,
                            slot,
                            model,
                            cache_bytes,
                            line,
                            env,
                            max_orders=max_orders,
                            max_tilings=max_tilings,
                        ):
                            if new_nest is item:
                                expansions.append(state)
                                continue
                            body = list(state.program.body)
                            body[slot] = new_nest
                            nxt = add(
                                state.program.with_body(body),
                                "search",
                                label,
                                state.plans + (plan,),
                            )
                            if nxt is not None:
                                expansions.append(nxt)
                    seen: set[str] = set()
                    states = []
                    for cand in sorted(expansions, key=_rank_key):
                        if cand.text in seen:
                            continue
                        seen.add(cand.text)
                        states.append(cand)
                        if len(states) >= beam:
                            break
                    if evaluator.exhausted:
                        break
                if evaluator.exhausted:
                    break

        ranked = tuple(sorted(pool.values(), key=_rank_key))

        best = original
        verified = False
        verify_slug = "unverified"
        rejected: list[tuple[str, str]] = []
        if verify:
            from repro.lint.verifyfix import verify_fixit

            with obs.span("autotune.verify"):
                for candidate in ranked:
                    ok, slug = verify_fixit(program, candidate.program)
                    if ok:
                        best, verified, verify_slug = candidate, True, slug
                        break
                    rejected.append((candidate.describe(), slug))
        else:
            best = ranked[0]

        sim_ranked: tuple[Candidate, ...] = ()
        sim_s = 0.0
        if compare_sim and topk > 0:
            from repro.experiments.common import run_sharded

            top = ranked[: max(topk, 1)]
            sim_start = time.perf_counter()
            with obs.span("autotune.rerank", candidates=len(top)):
                rows = run_sharded(
                    _sim_eval,
                    [
                        (c.program, line, capacity, model.cls, SIM_MAX_ACCESSES)
                        for c in top
                    ],
                    jobs,
                )
            sim_s = time.perf_counter() - sim_start
            sim_ranked = tuple(
                sorted(
                    (
                        replace(c, sim=OracleCost(misses, accesses))
                        for c, (misses, accesses, _) in zip(top, rows)
                    ),
                    key=lambda c: (c.sim.misses, c.text),  # type: ignore[union-attr]
                )
            )

        elapsed = time.perf_counter() - start
        if obs.enabled:
            obs.metrics.counter("autotune.generated").inc(evaluator.generated)
            obs.metrics.counter("autotune.evals").inc(evaluator.evals)
            obs.metrics.counter("autotune.candidates").inc(len(pool))
            if evaluator.exhausted:
                obs.metrics.counter("autotune.budget_exhausted").inc()
            assert best.cost is not None and original.cost is not None
            obs.remark(
                "autotune",
                "applied" if best.text != original.text else "analysis",
                f"best config: {best.describe()} "
                f"(predicted miss ratio "
                f"{original.cost.miss_ratio:.4f} -> "
                f"{best.cost.miss_ratio:.4f}, "
                f"{evaluator.evals} evals / {len(pool)} candidates)",
                source=best.source,
                verified=verified,
            )

    return AutotuneResult(
        program=program,
        best=best,
        original=original,
        compound=compound_cand,
        ranked=ranked,
        evaluated=evaluator.evals,
        generated=evaluator.generated,
        budget=budget,
        budget_exhausted=evaluator.exhausted,
        elapsed_s=elapsed,
        eval_s=evaluator.eval_s,
        verified=verified,
        verify_slug=verify_slug,
        rejected=tuple(rejected),
        sim_ranked=sim_ranked,
        sim_s=sim_s,
    )
