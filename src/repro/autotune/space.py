"""Candidate enumeration: the autotuner's search space.

The space is the cross product of three transform axes, every leg of
which goes through the repository's existing legality machinery:

* **loop permutation** — all legal orders of each top-level perfect
  nest, filtered by :func:`repro.transforms.legality.order_is_legal`
  over the nest's constraining dependence vectors and ranked by the
  paper's LoopCost model (cheapest innermost first);
* **tile sizes** — a capacity-model-seeded ladder per nest: power-of-two
  divisors of the (constant) trip counts of the §6 tile loops, kept only
  when :func:`repro.model.capacity.fits_in_cache` approves the tiled
  inner working set, applied through :func:`tile_nest` with its
  full-permutability legality check on;
* **fusion/distribution** — whole-program variants built from the
  dependence graph: greedy fusion of adjacent compatible nests (with and
  without the model's benefit requirement) and maximal distribution of
  imperfect nests.

Symbolic-trip loops cannot be strip-mined by the IR (``MIN`` bounds are
unsupported; see :mod:`repro.transforms.tiling`), so the tile ladder is
empty for parametric-bound nests and the search falls back to the
permutation × fusion axes there.

Every enumerated configuration carries a :class:`NestPlan` provenance
record stating which legality path admitted it (``original`` for the
untouched order, ``checked`` for anything the legality checker had to
approve), which the property tests and the fuzz oracle audit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import TransformError
from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import iter_loops
from repro.model.capacity import fits_in_cache
from repro.model.loopcost import CostModel
from repro.model.oracle import OracleCost
from repro.transforms.distribution import distribute_nest
from repro.transforms.fusion import fuse_adjacent
from repro.transforms.legality import constraining_vectors, order_is_legal
from repro.transforms.permute import apply_order
from repro.transforms.tiling import choose_tile_loops, tile_nest

__all__ = [
    "Candidate",
    "NestPlan",
    "ORIGINAL",
    "CHECKED",
    "fusion_variants",
    "legal_orders",
    "nest_options",
    "nest_slots",
    "tile_ladder",
]

#: Legality provenance slugs.
ORIGINAL = "original"  # untouched configuration, trivially legal
CHECKED = "checked"  # approved by the legality checker

#: Permutations are enumerated exhaustively only up to this chain depth
#: (6! = 720 legality checks); deeper nests fall back to the model's
#: preferred order plus the original.
MAX_ENUM_DEPTH = 6

#: Tile-size ladder: power-of-two candidates the capacity model prunes.
TILE_SIZES = (4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class NestPlan:
    """Provenance of one top-level nest's chosen configuration."""

    slot: int  # body index of the nest in its variant program
    original: tuple[str, ...]  # perfect-chain order before
    order: tuple[str, ...]  # chosen order (== original when untouched)
    tiles: tuple[tuple[str, int], ...] = ()  # (var, size), sorted
    legality: str = ORIGINAL


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a whole transformed program.

    ``text`` is the canonical pretty-printed form — the dedupe and memo
    key. ``source`` records how the candidate arose (``original``,
    ``compound``, or ``search``); ``fusion`` the fusion/distribution
    variant it was derived from; ``plans`` the per-nest provenance.
    ``cost`` is the planning oracle's verdict, ``sim`` the simulation
    oracle's (populated only by the top-k rerank).
    """

    program: Program
    text: str
    source: str
    fusion: str
    plans: tuple[NestPlan, ...] = ()
    cost: OracleCost | None = None
    sim: OracleCost | None = None

    def describe(self) -> str:
        """One-line human summary of the configuration."""
        parts: list[str] = []
        if self.fusion not in ("none", ""):
            parts.append(self.fusion)
        for plan in self.plans:
            if plan.order != plan.original:
                parts.append(f"{'.'.join(plan.original)}->{'.'.join(plan.order)}")
            for var, size in plan.tiles:
                parts.append(f"tile {var}={size}")
        if self.source == "compound" and not parts:
            parts.append("compound")
        return ", ".join(parts) if parts else "unchanged"


def nest_slots(program: Program) -> list[int]:
    """Body indices of the analyzable nests (depth >= 2 loops)."""
    return [
        index
        for index, item in enumerate(program.body)
        if isinstance(item, Loop) and item.depth >= 2
    ]


def legal_orders(
    nest: Loop, model: CostModel, cap: int = 8
) -> list[tuple[str, ...]]:
    """Legal permutations of the nest's perfect chain, model-ranked.

    Every returned order passed :func:`order_is_legal` over the nest's
    constraining dependence vectors (the original order vacuously so).
    Orders are ranked by the LoopCost of their innermost loop (outer
    positions break ties), cheapest first, and truncated to ``cap``.
    """
    chain = nest.perfect_nest_loops()
    if len(chain) < 2:
        return []
    original = tuple(loop.var for loop in chain)
    vectors = constraining_vectors(nest)
    index_of = {var: i for i, var in enumerate(original)}
    if len(chain) <= MAX_ENUM_DEPTH:
        orders = itertools.permutations(original)
    else:
        desired = tuple(
            v for v in model.memory_order(nest) if v in index_of
        )
        orders = iter({original, desired})
    legal = [
        order
        for order in orders
        if order == original
        or order_is_legal(vectors, [index_of[v] for v in order])
    ]
    costs = model.loop_costs(nest)
    legal.sort(
        key=lambda order: tuple(costs[v].magnitude() for v in reversed(order))
    )
    return legal[:cap]


def _trip_of(loop: Loop) -> int | None:
    """Constant trip count, or None (symbolic bounds / non-unit step)."""
    if loop.step != 1:
        return None
    span = loop.ub - loop.lb
    if not span.is_constant():
        return None
    return span.const + 1


def tile_ladder(
    nest: Loop,
    model: CostModel,
    cache_bytes: int,
    line_bytes: int,
    env: dict | None = None,
    max_options: int = 2,
) -> list[tuple[tuple[tuple[str, int], ...], Loop]]:
    """Capacity-seeded tilings of a perfect nest: ``[(tiles, tiled_nest)]``.

    Tile loops come from the §6 criterion (:func:`choose_tile_loops`);
    sizes from :data:`TILE_SIZES` restricted to divisors of the constant
    trip counts; each tiling is applied through :func:`tile_nest` with
    the full-permutability legality check enabled and kept only when the
    capacity model says the tiled inner working set fits. The largest
    fitting sizes win (they amortize tile-loop overhead best).
    """
    chain = nest.perfect_nest_loops()
    if len(chain) < 2:
        return []
    by_var = {loop.var: loop for loop in chain}
    trips: dict[str, int] = {}
    for var in choose_tile_loops(nest, model):
        loop = by_var.get(var)
        trip = _trip_of(loop) if loop is not None else None
        if trip is not None and trip > 1:
            trips[var] = trip
    if not trips:
        return []
    ladder: list[tuple[tuple[tuple[str, int], ...], Loop]] = []
    for size in TILE_SIZES:
        tiles = {
            var: size
            for var, trip in trips.items()
            if size < trip and trip % size == 0
        }
        if not tiles:
            continue
        try:
            result = tile_nest(nest, tiles, check=True)
        except TransformError:
            # The band is not fully permutable: no tiling of this nest
            # is legal, whatever the sizes.
            return []
        if fits_in_cache(result.loop, model, cache_bytes, line_bytes, env):
            ladder.append((tuple(sorted(tiles.items())), result.loop))
    return ladder[-max_options:]


def nest_options(
    nest: Loop,
    slot: int,
    model: CostModel,
    cache_bytes: int,
    line_bytes: int,
    env: dict | None = None,
    max_orders: int = 6,
    max_tilings: int = 2,
) -> list[tuple[Loop, NestPlan]]:
    """Configurations of one nest: identity, legal orders, tilings."""
    chain = nest.perfect_nest_loops()
    original = tuple(loop.var for loop in chain)
    options: list[tuple[Loop, NestPlan]] = [
        (nest, NestPlan(slot, original, original, (), ORIGINAL))
    ]
    if len(chain) < 2:
        return options
    for order in legal_orders(nest, model, cap=max_orders):
        if order == original:
            rebuilt = nest
        else:
            try:
                rebuilt = apply_order(chain, order, set())
            except TransformError:
                continue  # bounds defeat the reordering (triangular coupling)
            options.append(
                (rebuilt, NestPlan(slot, original, order, (), CHECKED))
            )
        for tiles, tiled in tile_ladder(
            rebuilt, model, cache_bytes, line_bytes, env, max_tilings
        ):
            options.append(
                (tiled, NestPlan(slot, original, order, tiles, CHECKED))
            )
    return options


def fusion_variants(
    program: Program,
    model: CostModel,
    cache_capacity: "tuple[int, int] | None" = None,
) -> list[tuple[str, Program]]:
    """Whole-program fusion/distribution variants, deduped by text.

    The identity variant comes first; then greedy fusion of adjacent
    compatible nests with the model's benefit requirement on and off
    (both capacity-vetoed when ``cache_capacity`` is given), then
    maximal distribution of every distributable nest. All legality goes
    through the transforms' own dependence-graph checks.
    """
    from repro.ir.pretty import pretty_program

    variants: list[tuple[str, Program]] = [("none", program)]
    for label, require_benefit in (("fuse", True), ("fuse-all", False)):
        outcome = fuse_adjacent(
            tuple(program.body),
            model,
            require_benefit=require_benefit,
            cache_capacity=cache_capacity,
            param_env=program.param_env,
        )
        if outcome.fused:
            variants.append((label, program.with_body(outcome.items)))

    used = {loop.var for loop in iter_loops(program)}
    body: list[Loop | Assign] = []
    distributed = False
    for item in program.body:
        if isinstance(item, Loop) and item.depth >= 2:
            outcome_d = distribute_nest(item, model, used_names=used)
            if outcome_d is not None:
                body.extend(outcome_d.nodes)
                used |= {
                    loop.var
                    for node in outcome_d.nodes
                    if isinstance(node, Loop)
                    for loop in iter_loops(node)
                }
                distributed = True
                continue
        body.append(item)
    if distributed:
        variants.append(("distribute", program.with_body(tuple(body))))

    seen: set[str] = set()
    unique: list[tuple[str, Program]] = []
    for label, variant in variants:
        text = pretty_program(variant)
        if text in seen:
            continue
        seen.add(text)
        unique.append((label, variant))
    return unique
