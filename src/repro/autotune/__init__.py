"""Model-driven autotuning: the analytic predictor as the planner.

See :mod:`repro.autotune.space` for the search space (legal
permutations × capacity-seeded tile ladders × dependence-graph
fusion/distribution variants) and :mod:`repro.autotune.search` for the
budgeted beam search and the simulation top-k rerank. The CLI surface
is ``python -m repro autotune``; ``docs/autotune.md`` has the tour.
"""

from repro.autotune.search import AutotuneResult, autotune
from repro.autotune.space import (
    CHECKED,
    ORIGINAL,
    Candidate,
    NestPlan,
    fusion_variants,
    legal_orders,
    nest_options,
    nest_slots,
    tile_ladder,
)

__all__ = [
    "AutotuneResult",
    "CHECKED",
    "Candidate",
    "NestPlan",
    "ORIGINAL",
    "autotune",
    "fusion_variants",
    "legal_orders",
    "nest_options",
    "nest_slots",
    "tile_ladder",
]
