"""Recursive-descent parser lowering mini-Fortran to the IR.

Supported language (enough to express every program in the paper):

* ``PROGRAM name`` / ``END``
* ``PARAMETER N = 512``
* ``REAL A(N, N), B(N)``, ``REAL S`` (scalar), ``INTEGER`` likewise
* ``DO I = lb, ub[, step]`` ... ``ENDDO``
* assignments with ``+ - * /``, unary minus, parentheses, intrinsic calls

Undeclared bare names in expressions are implicitly declared as scalars
(Fortran-style implicit typing). Array subscripts and loop bounds must be
affine in enclosing loop indices and parameters.
"""

from __future__ import annotations

from repro.errors import NonAffineError, ParseError
from repro.ir.affine import Affine
from repro.ir.expr import INTRINSICS, Bin, Call, Const, Expr, Ref, Sym, Var, expr_to_affine
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program
from repro.ir.span import Span
from repro.frontend.lexer import Token, tokenize

__all__ = ["parse_program"]


def parse_program(source: str) -> Program:
    """Parse mini-Fortran source into a validated :class:`Program`.

    Every parsed loop and assignment carries a :class:`Span` locating it
    in ``source``; parse errors quote the offending line with a caret.
    """
    from repro.obs import get_obs

    with get_obs().span("frontend.parse", chars=len(source)):
        try:
            return _Parser(tokenize(source)).parse()
        except ParseError as exc:
            if exc.line and exc.source_line is None:
                lines = source.splitlines()
                if 1 <= exc.line <= len(lines):
                    raise ParseError(
                        exc.message,
                        exc.line,
                        exc.column,
                        source_line=lines[exc.line - 1],
                    ) from None
            raise


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._params: dict[str, int] = {}
        self._arrays: dict[str, ArrayDecl] = {}
        self._scope: list[str] = []  # loop indices (renamed), outermost first
        # Fortran reuses index names across sibling loops; the IR requires
        # program-unique names, so duplicates are renamed (K, K_2, ...) and
        # occurrences inside the loop body follow the alias.
        self._alias: dict[str, str] = {}
        self._used_loop_names: set[str] = set()

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tok
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: str | None = None) -> bool:
        tok = self._tok
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._tok
        if not self._check(kind, text):
            wanted = text or kind
            raise ParseError(f"expected {wanted!r}, found {tok}", tok.line, tok.column)
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._accept("newline"):
            pass

    def _end_of_statement(self) -> None:
        if self._tok.kind == "eof":
            return
        self._expect("newline")
        self._skip_newlines()

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> Program:
        self._skip_newlines()
        self._expect("keyword", "PROGRAM")
        name_tok = self._expect("name")
        self._end_of_statement()

        while True:
            if self._accept("keyword", "PARAMETER"):
                self._parse_parameter()
            elif self._check("keyword", "REAL") or self._check("keyword", "INTEGER"):
                self._advance()
                self._parse_declarations()
            else:
                break

        body: list[Loop | Assign] = []
        while not self._check("keyword", "END"):
            if self._tok.kind == "eof":
                raise ParseError("missing END", self._tok.line, self._tok.column)
            body.append(self._parse_statement())
        self._expect("keyword", "END")

        program = Program.make(
            name_tok.text.lower(),
            body,
            arrays=self._arrays.values(),
            params=self._params,
        )
        from repro.ir.validate import validate_program

        validate_program(program)
        return program

    def _parse_parameter(self) -> None:
        name = self._expect("name").text
        self._expect("=")
        negative = bool(self._accept("-"))
        value_tok = self._expect("int")
        self._params[name] = -int(value_tok.text) if negative else int(value_tok.text)
        self._end_of_statement()

    def _parse_declarations(self) -> None:
        while True:
            name_tok = self._expect("name")
            shape: tuple[Affine, ...] = ()
            if self._accept("("):
                dims: list[Affine] = []
                while True:
                    dims.append(self._parse_affine(f"extent of {name_tok.text}"))
                    if not self._accept(","):
                        break
                self._expect(")")
                shape = tuple(dims)
            if name_tok.text in self._arrays:
                raise ParseError(
                    f"array {name_tok.text!r} declared twice", name_tok.line, name_tok.column
                )
            self._arrays[name_tok.text] = ArrayDecl(name_tok.text, shape)
            if not self._accept(","):
                break
        self._end_of_statement()

    def _span_from(self, start: Token) -> Span:
        """Span from ``start`` through the most recently consumed token."""
        last = self._tokens[self._pos - 1] if self._pos else start
        return Span(start.line, start.column, last.line, last.column + len(last.text))

    def _parse_statement(self) -> "Loop | Assign":
        do_tok = self._accept("keyword", "DO")
        if do_tok is not None:
            return self._parse_do(do_tok)
        return self._parse_assignment()

    def _parse_do(self, do_tok: Token) -> Loop:
        var_tok = self._expect("name")
        source_var = var_tok.text
        if self._alias.get(source_var, source_var) in self._scope:
            raise ParseError(
                f"loop index {source_var!r} already in use",
                var_tok.line,
                var_tok.column,
            )
        from repro.ir.visit import fresh_name

        var = fresh_name(source_var, self._used_loop_names)
        self._used_loop_names.add(var)
        self._expect("=")
        lb = self._parse_affine(f"lower bound of DO {source_var}")
        self._expect(",")
        ub = self._parse_affine(f"upper bound of DO {source_var}")
        step = 1
        if self._accept(","):
            negative = bool(self._accept("-"))
            step_tok = self._expect("int")
            step = -int(step_tok.text) if negative else int(step_tok.text)
        span = self._span_from(do_tok)  # the DO header line
        self._end_of_statement()

        self._scope.append(var)
        saved_alias = self._alias.get(source_var)
        self._alias[source_var] = var
        body: list[Loop | Assign] = []
        while not self._check("keyword", "ENDDO"):
            if self._tok.kind == "eof" or self._check("keyword", "END"):
                raise ParseError(
                    f"DO {source_var} missing ENDDO", self._tok.line, self._tok.column
                )
            body.append(self._parse_statement())
        self._expect("keyword", "ENDDO")
        self._end_of_statement()
        self._scope.pop()
        if saved_alias is None:
            del self._alias[source_var]
        else:
            self._alias[source_var] = saved_alias
        return Loop(var, lb, ub, step, tuple(body), span=span)

    def _parse_assignment(self) -> Assign:
        name_tok = self._expect("name")
        lhs = self._parse_reference(name_tok, is_write=True)
        self._expect("=")
        rhs = self._parse_expr()
        span = self._span_from(name_tok)
        self._end_of_statement()
        assert isinstance(lhs, Ref)
        return Assign(lhs, rhs, span=span)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        left = self._parse_term()
        while self._check("+") or self._check("-"):
            op = self._advance().text
            left = Bin(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self._check("*") or self._check("/"):
            op = self._advance().text
            left = Bin(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expr:
        if self._accept("-"):
            return Bin("-", Const(0), self._parse_factor())
        if self._accept("+"):
            return self._parse_factor()
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        tok = self._tok
        if tok.kind == "int":
            self._advance()
            return Const(int(tok.text))
        if tok.kind == "float":
            self._advance()
            return Const(float(tok.text.replace("D", "E").replace("d", "e")))
        if tok.kind == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if tok.kind == "name":
            self._advance()
            return self._parse_reference(tok, is_write=False)
        raise ParseError(f"unexpected token {tok}", tok.line, tok.column)

    def _parse_reference(self, name_tok: Token, is_write: bool) -> Expr:
        """A name occurrence: array ref, intrinsic call, index var, scalar."""
        name = self._alias.get(name_tok.text, name_tok.text)
        if self._check("("):
            if name in INTRINSICS and name not in self._arrays:
                if is_write:
                    raise ParseError(
                        f"cannot assign to intrinsic {name}", name_tok.line, name_tok.column
                    )
                self._advance()
                args: list[Expr] = []
                while True:
                    args.append(self._parse_expr())
                    if not self._accept(","):
                        break
                self._expect(")")
                return Call(name, tuple(args))
            self._advance()
            subs: list[Affine] = []
            while True:
                subs.append(self._parse_affine(f"subscript of {name}"))
                if not self._accept(","):
                    break
            self._expect(")")
            if name not in self._arrays:
                raise ParseError(
                    f"array {name!r} used before declaration", name_tok.line, name_tok.column
                )
            return Ref(name, tuple(subs))
        # Bare name.
        if is_write:
            if name not in self._arrays:
                self._arrays[name] = ArrayDecl(name, ())  # implicit scalar
            return Ref(name, ())
        if name in self._scope:
            return Var(name)
        if name in self._params:
            return Sym(name)
        if name in self._arrays and self._arrays[name].rank == 0:
            return Ref(name, ())
        # Implicit scalar read (may be uninitialized; the interpreter zeros it).
        self._arrays.setdefault(name, ArrayDecl(name, ()))
        return Ref(name, ())

    def _parse_affine(self, where: str) -> Affine:
        """Parse an expression and require it to be affine."""
        tok = self._tok
        expr = self._parse_expr()
        try:
            return expr_to_affine(_names_to_leaves(expr))
        except NonAffineError as exc:
            raise ParseError(f"{where}: {exc}", tok.line, tok.column) from exc


def _names_to_leaves(expr: Expr) -> Expr:
    """Rewrite rank-0 Refs back to Var leaves for affine extraction.

    Inside subscripts/bounds a bare name is an index variable or parameter,
    not a memory reference; the generic atom parser produced Refs/Vars/Syms
    depending on scope, and ``expr_to_affine`` accepts Var and Sym but not
    Ref, so scalar Refs are rewritten here.
    """
    if isinstance(expr, Ref) and expr.rank == 0:
        return Var(expr.array)
    if isinstance(expr, Bin):
        return Bin(expr.op, _names_to_leaves(expr.left), _names_to_leaves(expr.right))
    return expr
