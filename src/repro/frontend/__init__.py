"""Mini-Fortran frontend: tokenizer and parser producing IR programs."""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse_program

__all__ = ["Token", "tokenize", "parse_program"]
