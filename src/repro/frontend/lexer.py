"""Tokenizer for the mini-Fortran frontend.

Free-form input, case-insensitive keywords, ``!`` comments (and classic
full-line ``C``/``*`` column-1 comments). Statements end at end of line;
there are no continuation lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {"PROGRAM", "END", "ENDDO", "DO", "REAL", "INTEGER", "PARAMETER"}
)

_SYMBOLS = {"(", ")", ",", "=", "+", "-", "*", "/"}


@dataclass(frozen=True)
class Token:
    """A lexical token with 1-based source position."""

    kind: str  # 'name' | 'keyword' | 'int' | 'float' | symbol | 'newline' | 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize source text, folding identifiers/keywords to upper case."""
    return list(_tokens(source))


def _is_classic_comment(line: str) -> bool:
    """Column-1 ``C``/``*`` comment lines.

    ``*`` in column 1 is always a comment. ``C`` is a comment only when
    followed by whitespace or nothing, so ``C(I,J) = ...`` stays code.
    """
    if line[:1] == "*":
        return True
    if line[:1] in ("C", "c"):
        return len(line) == 1 or line[1] in " \t"
    return False


def _tokens(source: str) -> Iterator[Token]:
    lineno = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw
        if _is_classic_comment(line):
            continue
        produced_any = False
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            if ch in " \t":
                i += 1
                continue
            if ch == "!":
                break
            col = i + 1
            if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
                j = i
                is_float = False
                while j < n and (line[j].isdigit() or line[j] == "."):
                    if line[j] == ".":
                        is_float = True
                    j += 1
                if j < n and line[j] in "eEdD" and is_float:
                    k = j + 1
                    if k < n and line[k] in "+-":
                        k += 1
                    while k < n and line[k].isdigit():
                        k += 1
                    j = k
                text = line[i:j]
                yield Token("float" if is_float else "int", text, lineno, col)
                i = j
                produced_any = True
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (line[j].isalnum() or line[j] == "_"):
                    j += 1
                word = line[i:j].upper()
                kind = "keyword" if word in KEYWORDS else "name"
                yield Token(kind, word, lineno, col)
                i = j
                produced_any = True
                continue
            if ch in _SYMBOLS:
                yield Token(ch, ch, lineno, col)
                i += 1
                produced_any = True
                continue
            raise ParseError(f"unexpected character {ch!r}", lineno, col)
        if produced_any:
            yield Token("newline", "", lineno, len(line) + 1)
    yield Token("eof", "", max(lineno, 1), 1)
