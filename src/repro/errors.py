"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: bad structure, unknown names, invalid shapes."""


class NonAffineError(IRError):
    """An expression could not be interpreted as an affine form.

    The cost model and dependence analysis both require affine subscripts
    and loop bounds; anything else (products of index variables, calls,
    index arrays) raises this error during lowering.
    """


class ParseError(ReproError):
    """Raised by the mini-Fortran frontend on invalid source text.

    Attributes:
        line: 1-based source line of the offending token.
        column: 1-based source column of the offending token.
        message: the bare description, without the location prefix.
        source_line: the offending line of source text, when the frontend
            could recover it; rendered with a caret under the column.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        source_line: str | None = None,
    ):
        rendered = f"{line}:{column}: {message}" if line else message
        if source_line is not None:
            caret = " " * max(column - 1, 0) + "^"
            rendered += f"\n  {source_line.rstrip()}\n  {caret}"
        super().__init__(rendered)
        self.message = message
        self.line = line
        self.column = column
        self.source_line = source_line


class DependenceError(ReproError):
    """Dependence analysis could not be performed on a reference pair."""


class TransformError(ReproError):
    """A loop transformation was requested that is illegal or inapplicable."""


class ExecutionError(ReproError):
    """The loop-nest interpreter hit a runtime problem (unbound symbol,
    out-of-bounds subscript, division by zero, ...)."""
