"""Table 2: memory-order statistics over the whole suite.

For every suite program: nests originally in / permuted into / failing
memory order (and the same for the inner-loop position), fusion
candidate/actual counts, distribution counts, and LoopCost ratios for
the final and ideal programs — plus the suite totals row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import CostModel
from repro.stats import ProgramStats, collect_program_stats, render_table
from repro.suite import get_set

__all__ = ["Table2Result", "run", "render"]


@dataclass
class Table2Result:
    per_program: list[ProgramStats]

    @property
    def totals(self) -> dict:
        nests = sum(s.nests for s in self.per_program)
        loops = sum(s.loops for s in self.per_program)

        def pct(field: str) -> int:
            if nests == 0:
                return 0
            return round(
                100 * sum(getattr(s, field) for s in self.per_program) / nests
            )

        return {
            "Program": "totals",
            "Loops": loops,
            "Nests": nests,
            "MO-Orig%": pct("memory_order_orig"),
            "MO-Perm%": pct("memory_order_perm"),
            "MO-Fail%": pct("memory_order_fail"),
            "IL-Orig%": pct("inner_orig"),
            "IL-Perm%": pct("inner_perm"),
            "IL-Fail%": pct("inner_fail"),
            "Fus-C": sum(s.fusion_candidates for s in self.per_program),
            "Fus-A": sum(s.nests_fused for s in self.per_program),
            "Dist-D": sum(s.distribution_applied for s in self.per_program),
            "Dist-R": sum(s.distribution_resulting for s in self.per_program),
        }

    @property
    def improved_programs(self) -> list[str]:
        return [s.name for s in self.per_program if s.cost_ratio_final > 1.05]


def run(n: int = 16, cls: int = 4) -> Table2Result:
    stats = []
    for entry in get_set("paper").entries():
        program = entry.program(n)
        program_stats, _ = collect_program_stats(program, CostModel(cls=cls))
        stats.append(program_stats)
    return Table2Result(stats)


def render(result: Table2Result) -> str:
    rows = [s.row for s in result.per_program]
    rows.append(result.totals)
    return "Table 2: memory order statistics\n" + render_table(rows)
