"""Shared helpers for the experiment harness."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.cache import CACHE1, CACHE2, CacheConfig, SetAssocCache
from repro.errors import TransformError
from repro.exec import Interpreter, Machine, PerfResult, resolve_engine, simulate
from repro.ir.nodes import Loop, Program
from repro.ir.visit import enclosing_loops, iter_statements
from repro.model import CostModel
from repro.obs import Obs, get_obs, use_obs
from repro.transforms import apply_order, compound, fuse_all

__all__ = [
    "MACHINE1",
    "MACHINE2",
    "SPARC_MACHINE",
    "ShardFailure",
    "changed_sids",
    "dual_hit_rates",
    "ideal_program",
    "optimize",
    "resolve_jobs",
    "run_sharded",
    "shard_input_digest",
]

#: Simulated stand-ins for the paper's RS/6000 and i860 (see DESIGN.md:
#: relative behaviour is carried by the cache geometry + miss penalty).
MACHINE1 = Machine(cache=CACHE1, miss_penalty=16)
MACHINE2 = Machine(cache=CACHE2, miss_penalty=20)
SPARC_MACHINE = Machine(
    cache=CacheConfig("sparc2", size=64 * 1024, assoc=1, line=32), miss_penalty=24
)


def optimize(program: Program, cls: int = 16) -> Program:
    """Compound-transform a program with a line size of ``cls`` elements.

    Runs under a per-kernel span so the experiment harness and suite
    runner can attribute wall time to individual kernels.
    """
    with get_obs().span("experiment.optimize", program=program.name, cls=cls):
        return compound(program, CostModel(cls=cls)).program


def changed_sids(original: Program, final: Program) -> frozenset[int]:
    """Statements whose enclosing loop structure changed (the paper's
    "optimized procedures")."""

    def shape(program: Program) -> dict[int, tuple]:
        chains = enclosing_loops(program)
        return {
            stmt.sid: tuple(
                (loop.var, str(loop.lb), str(loop.ub), loop.step)
                for loop in chains[stmt.sid]
            )
            for stmt in iter_statements(program)
        }

    before, after = shape(original), shape(final)
    return frozenset(
        sid for sid in before if after.get(sid) != before[sid]
    )


def dual_hit_rates(
    program: Program,
    config: CacheConfig,
    focus_sids: frozenset[int],
    init=None,
    engine: str | None = None,
) -> tuple[float, float]:
    """(whole-program, focus-statements) hit rates under one cache.

    Both rates come from a single execution: the whole-program cache sees
    every access; the focus counters sample the same cache's behaviour on
    accesses issued by the focus statements — the paper's "optimized
    procedures" columns. ``engine`` selects the batched or per-event
    trace engine (see :func:`repro.exec.resolve_engine`); the two are
    bit-identical, and the batched default falls back per program.
    """
    obs = get_obs()
    cache = SetAssocCache(config)
    focus_total = 0
    focus_hits = 0
    focus_cold = 0

    def access(address: int, write: bool, sid: int) -> None:
        nonlocal focus_total, focus_hits, focus_cold
        before_cold = cache.stats.cold_misses
        hit = cache.access(address, 8, write)
        if sid in focus_sids:
            focus_total += 1
            if hit:
                focus_hits += 1
            focus_cold += cache.stats.cold_misses - before_cold

    focus_arr = np.fromiter(sorted(focus_sids), dtype=np.int64, count=len(focus_sids))

    def on_block(block) -> None:
        nonlocal focus_total, focus_hits, focus_cold
        result = cache.access_block(block.addresses, block.sizes)
        mask = np.isin(block.sids, focus_arr)
        focus_total += int(np.count_nonzero(mask))
        focus_hits += int(np.count_nonzero(result.hits[mask]))
        focus_cold += int(result.cold[mask].sum())

    # Addresses do not depend on values, so the fast compiled trace
    # drives the cache regardless of ``init``.
    from repro.exec.blocktrace import BlockTraceError, compile_block_trace
    from repro.exec.codegen import compile_trace

    engine = resolve_engine(engine)
    with obs.span(
        "experiment.hit_rates", program=program.name, cache=config.name
    ):
        block_trace = None
        if engine == "block":
            try:
                block_trace = compile_block_trace(program)
            except BlockTraceError:
                engine = "event"
                if obs.enabled:
                    obs.metrics.counter("trace.block.fallback").inc()
        if block_trace is not None:
            block_trace.run(on_block)
        else:
            compile_trace(program).run(access)
        if obs.enabled:
            obs.metrics.counter(f"trace.engine.{engine}").inc()
    whole = cache.stats.hit_rate()
    denominator = focus_total - focus_cold
    focus = focus_hits / denominator if denominator > 0 else 1.0
    return whole, focus


# ----------------------------------------------------------------------
# Parallel experiment runner


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker-process count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(raw) if raw else 1
    return max(1, int(jobs))


@dataclass(frozen=True)
class ShardFailure:
    """One shard's captured exception (picklable).

    Returned in place of a result by ``run_sharded(...,
    return_exceptions=True)`` so a single failing call never poisons its
    sibling shards — the set runner turns these into per-entry "failed"
    rows instead of losing the whole run. ``input_digest`` is a stable
    digest of the failing call's arguments, so a ledgered failure can be
    matched back to the exact input that produced it even after the
    in-memory results are gone.
    """

    error: str  # "ExceptionType: message"
    traceback: str
    input_digest: str = ""

    def __bool__(self) -> bool:  # failures are falsy, like a missing result
        return False


def shard_input_digest(args) -> str:
    """Stable short digest of one shard call's argument tuple."""
    from repro.obs.ledger import config_digest

    return config_digest([repr(a) for a in args])


def _call_captured(fn, args, capture: bool):
    """Invoke ``fn(*args)``; with ``capture``, trap exceptions as data."""
    if not capture:
        return fn(*args)
    try:
        return fn(*args)
    except Exception as exc:
        import traceback as _traceback

        return ShardFailure(
            f"{type(exc).__name__}: {exc}",
            _traceback.format_exc(),
            input_digest=shard_input_digest(args),
        )


def _shard_worker(payload):
    """Run one shard under a fresh observability context.

    Returns ``(shard_index, result, metrics, remarks, spans)`` — all
    picklable — so the parent can merge the worker's observations into
    its own context. Worker spans are tagged with the worker pid and the
    shard index (the Perfetto worker lane; see ``obs/chrometrace.py``).
    """
    fn, args, shard_index, observed, profile, capture = payload
    if not observed:
        return shard_index, _call_captured(fn, args, capture), None, (), ()
    obs = Obs(profile=profile)
    obs.tracer.shard = shard_index
    with use_obs(obs):
        result = _call_captured(fn, args, capture)
    return shard_index, result, obs.metrics, tuple(obs.remarks), tuple(
        obs.tracer.spans
    )


def run_sharded(
    fn, calls, jobs: int | None = None, return_exceptions: bool = False
) -> list:
    """Run ``fn(*args)`` for every args-tuple in ``calls``, order preserved.

    With ``jobs > 1`` the calls are sharded across a process pool;
    ``fn`` and every argument must be picklable (module-level functions
    and plain data — pass suite-entry *names*, not entries). Each worker
    runs under a fresh :class:`repro.obs.Obs`; when the parent context is
    enabled, the workers' metrics, remarks, AND spans are merged back
    into it — spans grafted under the ``experiment.sharded`` span with
    (pid, shard) provenance — so observability output is identical to a
    serial run up to span nesting. Merging goes through
    ``Obs.merge_shard``, which is idempotent per shard index: a shard
    resubmitted after a pool retry is recorded in the metrics ``shards``
    dimension but never double-counted in parent totals.

    With ``return_exceptions=True`` an exception raised by one call —
    serial or sharded — is captured as a :class:`ShardFailure` in that
    call's result slot instead of propagating, so sibling shards always
    complete; callers surface the failures per item (the suite set
    runner turns them into per-entry "failed" report rows).
    """
    jobs = resolve_jobs(jobs)
    calls = list(calls)
    obs = get_obs()
    if jobs <= 1 or len(calls) <= 1:
        return [_call_captured(fn, args, return_exceptions) for args in calls]
    if obs.enabled:
        obs.metrics.counter("experiment.shards").inc(len(calls))
        obs.metrics.gauge("experiment.jobs").set(min(jobs, len(calls)))
    profile = bool(getattr(obs.tracer, "profile", False))
    payloads = [
        (fn, args, index, obs.enabled, profile, return_exceptions)
        for index, args in enumerate(calls)
    ]
    with obs.span("experiment.sharded", shards=len(calls), jobs=jobs) as sharded:
        with ProcessPoolExecutor(max_workers=min(jobs, len(calls))) as pool:
            shards = list(pool.map(_shard_worker, payloads))
        results = [None] * len(calls)
        for shard_index, result, metrics, remarks, spans in shards:
            results[shard_index] = result
            if obs.enabled and metrics is not None:
                obs.merge_shard(
                    f"shard-{shard_index}",
                    metrics,
                    remarks=remarks,
                    spans=spans,
                    parent=sharded,
                    shard=shard_index,
                )
    return results


def ideal_program(program: Program, model: CostModel | None = None) -> Program:
    """Force every nest into memory order, ignoring legality (§5.2).

    The result is only ever analyzed, never executed — it may compute
    different values. Nests whose bounds defeat reordering stay as-is.
    """
    from repro.ir.visit import fresh_name, iter_loops, rename_loops

    model = model or CostModel()
    used = {loop.var for loop in iter_loops(program)}

    def fission(item: Loop) -> list[Loop]:
        """Structurally distribute: one loop copy per body item."""
        flattened: list = []
        for child in item.body:
            if isinstance(child, Loop):
                flattened.extend(fission(child))
            else:
                flattened.append(child)
        if len(flattened) <= 1:
            return [item.with_body(flattened)]
        copies = []
        for child in flattened:
            var = fresh_name(item.var, used)
            used.add(var)
            copy = item.with_body([child])
            if var != item.var:
                copy = rename_loops(copy, {item.var: var})
            copies.append(copy)
        return copies

    def force(item: Loop, outer: tuple[Loop, ...]) -> Loop:
        chain = item.perfect_nest_loops()
        if len(chain) >= 2:
            desired = tuple(
                v
                for v in model.memory_order(item, outer=outer)
                if v in {l.var for l in chain}
            )
            try:
                return apply_order(chain, desired, set(), outer)
            except TransformError:
                pass
        return item

    new_body = []
    for item in program.body:
        if not isinstance(item, Loop):
            new_body.append(item)
            continue
        for piece in fission(item):
            new_body.append(force(piece, ()))
    return program.with_body(new_body)
