"""Table 5: data access properties for the significantly improved programs.

For each improved program (and the whole suite), the original, final,
and ideal versions are classified: % of reference groups with invariant,
unit-stride, or no self reuse; group-spatial share; references per
group; LoopCost ratios (plain and depth-weighted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import CostModel
from repro.stats import (
    AccessProperties,
    collect_access_properties,
    cost_ratios,
    render_table,
)
from repro.suite import get_entry, get_set
from repro.transforms import compound
from repro.experiments.common import ideal_program

__all__ = ["Table5Result", "run", "render", "DEFAULT_PROGRAMS"]

#: Mirrors the paper's five highlighted programs (arc2d, dnasa7, appsp,
#: simple, wave), with gmtry/vpenta standing in for the dnasa7 kernels.
DEFAULT_PROGRAMS = (
    "arc2d_like",
    "gmtry_like",
    "vpenta_like",
    "appsp_like",
    "simple_like",
    "wave_like",
)


@dataclass
class ProgramPanel:
    name: str
    original: AccessProperties
    final: AccessProperties
    ideal: AccessProperties
    ratio_final: tuple[float, float]  # (avg, weighted)
    ratio_ideal: tuple[float, float]

    @property
    def unit_share_gain(self) -> int:
        """Percentage-point gain in unit-stride groups (paper's key
        observation: transformed programs gain self-spatial reuse)."""
        return self.final.row["Unit%"] - self.original.row["Unit%"]


@dataclass
class Table5Result:
    panels: list[ProgramPanel]

    def panel(self, name: str) -> ProgramPanel:
        for panel in self.panels:
            if panel.name == name:
                return panel
        raise KeyError(name)


def run(
    names: tuple[str, ...] = DEFAULT_PROGRAMS,
    n: int = 16,
    cls: int = 4,
    include_all: bool = True,
) -> Table5Result:
    model = CostModel(cls=cls)
    panels = []
    selected = list(names)
    if include_all:
        selected.append("__all__")

    for name in selected:
        entries = (
            get_set("paper").entries() if name == "__all__" else [get_entry(name)]
        )
        originals = [e.program(n) for e in entries]
        finals = [compound(p, CostModel(cls=cls)).program for p in originals]
        ideals = [ideal_program(p, CostModel(cls=cls)) for p in originals]
        panels.append(
            ProgramPanel(
                name=name if name != "__all__" else "all programs",
                original=_merge(originals, cls, "original"),
                final=_merge(finals, cls, "final"),
                ideal=_merge(ideals, cls, "ideal"),
                ratio_final=_merge_ratios(originals, finals, model),
                ratio_ideal=_merge_ratios(originals, ideals, model),
            )
        )
    return Table5Result(panels)


def _merge(programs, cls: int, label: str) -> AccessProperties:
    totals = dict(
        groups_invariant=0,
        groups_unit=0,
        groups_none=0,
        groups_spatial=0,
        refs_invariant=0,
        refs_unit=0,
        refs_none=0,
    )
    for program in programs:
        props = collect_access_properties(program, CostModel(cls=cls), label)
        for key in totals:
            totals[key] += getattr(props, key)
    return AccessProperties(name=label, **totals)


def _merge_ratios(originals, others, model: CostModel) -> tuple[float, float]:
    avgs, weights = [], []
    for original, other in zip(originals, others):
        avg, weighted = cost_ratios(original, other, model)
        avgs.append(avg)
        weights.append(weighted)
    return (sum(avgs) / len(avgs), sum(weights) / len(weights))


def render(result: Table5Result) -> str:
    rows = []
    for panel in result.panels:
        for label, props, ratios in (
            ("original", panel.original, None),
            ("final", panel.final, panel.ratio_final),
            ("ideal", panel.ideal, panel.ratio_ideal),
        ):
            row = {"Program": panel.name, **props.row}
            row["Version"] = label
            if ratios:
                row["RatioAvg"] = round(ratios[0], 2)
                row["RatioWt"] = round(ratios[1], 2)
            else:
                row["RatioAvg"] = ""
                row["RatioWt"] = ""
            rows.append(row)
    return "Table 5: data access properties\n" + render_table(rows)
