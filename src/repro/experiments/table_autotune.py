"""Table-autotune: model-driven search vs brute-force simulation.

For each gate kernel the autotuner (:mod:`repro.autotune`) searches the
permutation x tiling x fusion space scoring every candidate with the
*analytic* oracle only; the trace-driven cache simulator then scores the
complete candidate pool as ground truth. The table reports the chosen
configuration and its **regret** — the simulated miss ratio of the
model's choice minus the best simulated miss ratio in the pool, in
percentage points. Zero regret means trusting the analytic model found
the same winner the exhaustive simulation would have, at a small
fraction of the cost (the timed comparison lives in
``benchmarks/bench_autotune.py``; this table is deterministic and
timing-free so it can be snapshotted as a golden file).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.report import render_table
from repro.suite import get_entry
from repro.experiments.common import run_sharded

__all__ = [
    "SIZES_QUICK",
    "SIZES_FULL",
    "AutotuneRow",
    "TableAutotuneResult",
    "run",
    "render",
]

#: Gate kernels at sizes whose arrays clearly exceed the 8 KB search
#: cache (right at the capacity boundary the analytic threshold model
#: can land on the wrong side; see benchmarks/bench_autotune.py).
SIZES_QUICK: tuple[tuple[str, int], ...] = (
    ("jacobi", 65),
    ("adi", 25),
    ("erlebacher_like", 9),
    ("cholesky", 17),
    ("transpose", 49),
)

SIZES_FULL: tuple[tuple[str, int], ...] = (
    ("jacobi", 257),
    ("adi", 241),
    ("erlebacher_like", 33),
    ("cholesky", 129),
    ("transpose", 385),
)

#: Search geometry: the 8 KB / 32 B-line fa2 config the analytic
#: predictor is accuracy-gated at (see benchmarks/bench_autotune.py).
LINE = 32
CAPACITY = 256

_EPS = 1e-9


@dataclass
class AutotuneRow:
    name: str
    n: int
    candidates: int
    evals: int
    best: str  # Candidate.describe() of the chosen config
    source: str  # "original" | "compound" | "search"
    verified: bool
    pred_orig: float  # predicted miss ratio of the original
    pred_best: float  # predicted miss ratio of the chosen config
    sim_chosen: float  # simulated miss ratio of the chosen config
    sim_best: float  # best simulated miss ratio over the whole pool
    beats_compound: bool

    @property
    def regret_pp(self) -> float:
        return (self.sim_chosen - self.sim_best) * 100.0


@dataclass
class TableAutotuneResult:
    rows: list[AutotuneRow]

    def row(self, name: str) -> AutotuneRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def worst_regret_pp(self) -> float:
        return max((row.regret_pp for row in self.rows), default=0.0)


def _kernel_row(name: str, n: int, budget: int, beam: int) -> AutotuneRow:
    """One kernel's search + exhaustive sim; module-level so shards pickle."""
    from repro.autotune import autotune
    from repro.autotune.search import SIM_MAX_ACCESSES, _sim_eval

    program = get_entry(name).program(n)
    result = autotune(
        program, line=LINE, capacity=CAPACITY, budget=budget, beam=beam, topk=0
    )
    sim_ratios: dict[str, float] = {}
    for candidate in result.ranked:
        misses, accesses, _ = _sim_eval(
            candidate.program, LINE, CAPACITY, LINE // 8, SIM_MAX_ACCESSES
        )
        sim_ratios[candidate.text] = misses / accesses if accesses else 0.0
    assert result.best.cost is not None
    assert result.original.cost is not None
    assert result.compound.cost is not None
    return AutotuneRow(
        name=name,
        n=n,
        candidates=len(result.ranked),
        evals=result.evaluated,
        best=result.best.describe(),
        source=result.best.source,
        verified=result.verified,
        pred_orig=result.original.cost.miss_ratio,
        pred_best=result.best.cost.miss_ratio,
        sim_chosen=sim_ratios[result.best.text],
        sim_best=min(sim_ratios.values()),
        beats_compound=(
            result.best.cost.misses <= result.compound.cost.misses + _EPS
        ),
    )


def run(
    sizes: tuple[tuple[str, int], ...] | None = None,
    budget: int = 24,
    beam: int = 2,
    jobs: int | None = None,
) -> TableAutotuneResult:
    sizes = sizes if sizes is not None else SIZES_QUICK
    rows = run_sharded(
        _kernel_row, [(name, n, budget, beam) for name, n in sizes], jobs
    )
    return TableAutotuneResult(list(rows))


def render(result: TableAutotuneResult) -> str:
    rows = []
    for row in result.rows:
        rows.append(
            {
                "Program": row.name,
                "N": row.n,
                "Cands": row.candidates,
                "Best config": row.best,
                "Src": row.source,
                "Pred orig": round(100 * row.pred_orig, 2),
                "Pred best": round(100 * row.pred_best, 2),
                "Sim chosen": round(100 * row.sim_chosen, 2),
                "Sim best": round(100 * row.sim_best, 2),
                "Regret pp": round(row.regret_pp, 2),
                ">=Compound": "yes" if row.beats_compound else "NO",
            }
        )
    return (
        "Table-autotune: model-driven search vs exhaustive simulation, "
        "miss ratios in %\n"
        f"(8KB FA cache, 32B lines; worst regret "
        f"{result.worst_regret_pp():.2f}pp)\n" + render_table(rows)
    )
