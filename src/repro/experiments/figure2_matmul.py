"""Figure 2: matrix multiply — cost model ranking vs simulated time.

The paper executes all six loop orders of matrix multiply on three
machines at two sizes, showing that the model's ranking (JKI best ...
IKJ worst) exactly predicts relative performance, with larger matrices
amplifying the gap. We reproduce the experiment with the cycle-level
simulator at scaled-down sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import line_elements
from repro.exec import simulate
from repro.model import CostModel
from repro.suite.kernels import MATMUL_ORDERS, matmul
from repro.stats.report import render_table
from repro.experiments.common import MACHINE1, MACHINE2, SPARC_MACHINE

__all__ = ["Figure2Result", "run", "render"]

_MACHINES = {
    "rs6000": MACHINE1,
    "i860": MACHINE2,
    "sparc2": SPARC_MACHINE,
}


@dataclass
class Figure2Result:
    sizes: tuple[int, ...]
    model_ranking: tuple[str, ...]
    cycles: dict[tuple[str, int, str], int]  # (machine, size, order) -> cycles
    simulated_rankings: dict[tuple[str, int], tuple[str, ...]]

    @property
    def rank_agreements(self) -> dict[tuple[str, int], bool]:
        """Does the simulated best order match the model's best?"""
        return {
            key: ranking[0] == self.model_ranking[0]
            for key, ranking in self.simulated_rankings.items()
        }

    def spread(self, machine: str, size: int) -> float:
        """worst/best cycle ratio — the paper's 'factors of up to ...'."""
        values = [
            self.cycles[(machine, size, order)] for order in MATMUL_ORDERS
        ]
        return max(values) / min(values)


def run(
    sizes: tuple[int, ...] = (24, 48),
    machines: dict | None = None,
) -> Figure2Result:
    machines = machines or _MACHINES
    model = CostModel(cls=4)
    ranking = tuple(
        "".join(order) for order in model.rank_permutations(matmul(8, "IJK").top_loops[0])
    )

    cycles: dict[tuple[str, int, str], int] = {}
    rankings: dict[tuple[str, int], tuple[str, ...]] = {}
    for machine_name, machine in machines.items():
        for size in sizes:
            for order in MATMUL_ORDERS:
                perf = simulate(matmul(size, order), machine)
                cycles[(machine_name, size, order)] = perf.cycles
            rankings[(machine_name, size)] = tuple(
                sorted(
                    MATMUL_ORDERS,
                    key=lambda o: cycles[(machine_name, size, o)],
                )
            )
    return Figure2Result(tuple(sizes), ranking, cycles, rankings)


def render(result: Figure2Result) -> str:
    rows = []
    for (machine, size), ranking in sorted(result.simulated_rankings.items()):
        row = {"Machine": machine, "N": size}
        for order in MATMUL_ORDERS:
            row[order] = result.cycles[(machine, size, order)]
        row["Best"] = ranking[0]
        row["Spread"] = round(result.spread(machine, size), 2)
        rows.append(row)
    header = (
        "Figure 2: matrix multiply, simulated cycles per loop order\n"
        f"Model ranking (best to worst): {' '.join(result.model_ranking)}"
    )
    return header + "\n" + render_table(rows)
