"""Figure 3: ADI integration — fusion's effect on LoopCost.

Reproduces the figure's cost table (cls=4): with the two K loops fused,
LoopCost(K) drops from 5n^2 to 3n^2, and the enabled interchange brings
the inner cost down to 3/4 n^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import CostModel, CostPoly
from repro.suite.kernels import adi
from repro.stats.report import render_table

__all__ = ["Figure3Result", "run", "render"]


@dataclass
class Figure3Result:
    unfused_total_k: CostPoly  # sum of the two distributed nests at K
    fused_cost_k: CostPoly
    fused_cost_i: CostPoly

    @property
    def fusion_profitable(self) -> bool:
        return self.fused_cost_k.magnitude() < self.unfused_total_k.magnitude()

    @property
    def interchange_profitable(self) -> bool:
        return self.fused_cost_i.magnitude() < self.fused_cost_k.magnitude()


def run(cls: int = 4) -> Figure3Result:
    model = CostModel(cls=cls)

    distributed = adi(100, "distributed").top_loops[0]
    outer_trip = CostPoly.symbol("N") - 1  # DO I = 2, N
    unfused = CostPoly.constant(0)
    for inner in distributed.inner_loops:
        # Inner-nest cost times the shared outer loop's trip count, the
        # paper's "compute LoopCost independently for each candidate".
        unfused = unfused + model.loop_cost(
            inner, inner.var, outer=(distributed,)
        ) * outer_trip

    fused = adi(100, "fused").top_loops[0]
    costs = model.loop_costs(fused)
    inner_k = fused.inner_loops[0].var
    return Figure3Result(
        unfused_total_k=unfused,
        fused_cost_k=costs[inner_k],
        fused_cost_i=costs[fused.var],
    )


def render(result: Figure3Result) -> str:
    rows = [
        {"Version": "distributed (two K nests)", "LoopCost": str(result.unfused_total_k)},
        {"Version": "fused, K inner", "LoopCost": str(result.fused_cost_k)},
        {"Version": "fused, I inner (interchanged)", "LoopCost": str(result.fused_cost_i)},
    ]
    notes = (
        f"fusion profitable: {result.fusion_profitable}; "
        f"interchange profitable: {result.interchange_profitable}"
    )
    return (
        "Figure 3: ADI integration LoopCost (cls=4; paper: 5n^2 -> 3n^2 -> 3/4 n^2)\n"
        + render_table(rows)
        + "\n"
        + notes
    )
