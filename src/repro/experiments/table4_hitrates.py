"""Table 4: simulated cache hit rates (cold misses excluded).

For every suite program, the original and final versions are simulated
against cache1 (RS/6000-style: 64KB/4-way/128B) and cache2 (i860-style:
8KB/2-way/32B). Hit rates are reported both for the whole program and
for the "optimized procedures" — statements whose loop structure the
compiler changed — mirroring the paper's two column groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import CACHE1, CACHE2, CacheConfig
from repro.model import CostModel
from repro.stats.report import render_table
from repro.suite import get_entry, get_set
from repro.transforms import compound
from repro.experiments.common import changed_sids, dual_hit_rates, run_sharded
from repro.experiments.table3_perf import problem_size

__all__ = ["HitRateRow", "Table4Result", "run", "render"]


@dataclass
class HitRateRow:
    name: str
    # (config, version) -> rate, for 'whole' and 'opt' scopes
    whole: dict[tuple[str, str], float]
    opt: dict[tuple[str, str], float]
    optimized_statements: int

    def whole_delta(self, config: str) -> float:
        return self.whole[(config, "final")] - self.whole[(config, "orig")]

    def opt_delta(self, config: str) -> float:
        return self.opt[(config, "final")] - self.opt[(config, "orig")]


@dataclass
class Table4Result:
    rows: list[HitRateRow]

    def row(self, name: str) -> HitRateRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def improved_whole(self, config: str, threshold: float = 0.001) -> list[str]:
        return [r.name for r in self.rows if r.whole_delta(config) > threshold]


def _entry_row(
    name: str,
    scale: float,
    cls: int,
    config_items: tuple[tuple[str, CacheConfig], ...],
) -> HitRateRow:
    """One suite program's row; module-level so shards can pickle it.

    Takes the entry *name* (``SuiteEntry`` builders are lambdas and do
    not pickle) and resolves it inside the worker.
    """
    entry = get_entry(name)
    n = problem_size(name, scale)
    program = entry.program(n)
    final = compound(program, CostModel(cls=cls)).program
    focus = changed_sids(program, final)
    whole: dict[tuple[str, str], float] = {}
    opt: dict[tuple[str, str], float] = {}
    for config_name, config in config_items:
        for version_name, version in (("orig", program), ("final", final)):
            whole_rate, opt_rate = dual_hit_rates(
                version, config, focus, init=entry.init
            )
            whole[(config_name, version_name)] = whole_rate
            opt[(config_name, version_name)] = opt_rate
    return HitRateRow(name, whole, opt, len(focus))


def run(
    scale: float = 1.0,
    cls: int = 4,
    configs: dict[str, CacheConfig] | None = None,
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
) -> Table4Result:
    configs = configs or {"cache1": CACHE1, "cache2": CACHE2}
    config_items = tuple(configs.items())
    selected = [
        entry.name
        for entry in get_set("paper").entries()
        if not names or entry.name in names
    ]
    rows = run_sharded(
        _entry_row,
        [(name, scale, cls, config_items) for name in selected],
        jobs,
    )
    return Table4Result(rows)


def render(result: Table4Result) -> str:
    configs = sorted({c for row in result.rows for c, _ in row.whole})
    rows = []
    for row in result.rows:
        cells = {"Program": row.name, "OptStmts": row.optimized_statements}
        for config in configs:
            cells[f"{config} opt O"] = round(100 * row.opt[(config, "orig")], 1)
            cells[f"{config} opt F"] = round(100 * row.opt[(config, "final")], 1)
            cells[f"{config} whole O"] = round(100 * row.whole[(config, "orig")], 2)
            cells[f"{config} whole F"] = round(100 * row.whole[(config, "final")], 2)
        rows.append(cells)
    return (
        "Table 4: simulated cache hit rates, %, cold misses excluded\n"
        "(opt = optimized statements only; O = original, F = final)\n"
        + render_table(rows)
    )
