"""Table 3: simulated performance of original vs transformed programs.

The paper compiles the original and transformed versions of every suite
program and reports execution-time speedups on the RS/6000; programs
with no change are omitted from the table. We simulate cycles on the
scaled machine models (see DESIGN.md for the hardware substitution) at
per-program sizes chosen so working sets exceed the simulated caches —
the paper's small-data-fits-in-cache effect is studied in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import Machine, simulate
from repro.model import CostModel
from repro.stats.report import render_table
from repro.suite import get_entry, get_set
from repro.transforms import compound
from repro.experiments.common import MACHINE2, run_sharded

__all__ = ["Table3Result", "run", "render", "problem_size"]

#: Problem sizes per dimensionality so footprints exceed the caches while
#: staying simulation-friendly.
_SIZE_2D = 48
_SIZE_3D = 14

_THREE_D = {
    "appbt_like",
    "applu_like",
    "appsp_like",
    "btrix_like",
    "erlebacher_like",
}


def problem_size(name: str, scale: float = 1.0) -> int:
    base = _SIZE_3D if name in _THREE_D else _SIZE_2D
    return max(int(base * scale), 6)


@dataclass
class PerfRow:
    name: str
    original_cycles: int
    transformed_cycles: int

    @property
    def speedup(self) -> float:
        if self.transformed_cycles == 0:
            return 1.0
        return self.original_cycles / self.transformed_cycles


@dataclass
class Table3Result:
    rows: list[PerfRow]

    @property
    def improved(self) -> list[PerfRow]:
        return [r for r in self.rows if r.speedup > 1.02]

    @property
    def degraded(self) -> list[PerfRow]:
        return [r for r in self.rows if r.speedup < 0.98]

    def row(self, name: str) -> PerfRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


def _entry_row(name: str, machine: Machine, scale: float, cls: int) -> PerfRow:
    """One suite program's row; module-level so shards can pickle it.

    Takes the entry *name* (``SuiteEntry`` builders are lambdas and do
    not pickle) and resolves it inside the worker.
    """
    entry = get_entry(name)
    n = problem_size(name, scale)
    program = entry.program(n)
    transformed = compound(program, CostModel(cls=cls)).program
    original = simulate(program, machine)
    final = simulate(transformed, machine)
    return PerfRow(name, original.cycles, final.cycles)


def run(
    machine: Machine | None = None,
    scale: float = 1.0,
    cls: int = 4,
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
) -> Table3Result:
    machine = machine or MACHINE2
    selected = [
        entry.name
        for entry in get_set("paper").entries()
        if not names or entry.name in names
    ]
    rows = run_sharded(
        _entry_row, [(name, machine, scale, cls) for name in selected], jobs
    )
    return Table3Result(rows)


def render(result: Table3Result) -> str:
    rows = [
        {
            "Program": r.name,
            "Original": r.original_cycles,
            "Transformed": r.transformed_cycles,
            "Speedup": round(r.speedup, 2),
        }
        for r in sorted(result.rows, key=lambda r: -r.speedup)
    ]
    return "Table 3: simulated performance (cycles)\n" + render_table(rows)
