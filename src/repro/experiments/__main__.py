"""CLI: ``python -m repro.experiments [names...] [--full] [--save DIR]
[--trace FILE] [--chrome-trace FILE] [--profile] [--jobs N] [--no-ledger]``.

Runs the requested experiments (default: all) and prints the paper-style
tables; ``--save DIR`` additionally writes each rendered table to
``DIR/<name>.txt`` so EXPERIMENTS.md can be refreshed from artifacts.
``--trace FILE`` records per-experiment (and per-kernel) spans plus
pipeline metrics to a JSONL file, making benchmark regressions
diagnosable from the trace alone. ``--chrome-trace FILE`` writes the
same span forest as a Chrome trace-event / Perfetto JSON — with
``--jobs N`` the worker shards render as their own lanes. ``--profile``
prints the hierarchical phase profile (wall + CPU + peak memory) to
stderr after the tables. ``--jobs N`` shards the per-kernel simulations
of the table experiments across N worker processes (equivalent to
setting ``REPRO_JOBS=N``); results are identical to a serial run, and
worker metrics/spans merge back shard-deduplicated.

Every invocation appends a run record to ``.repro/ledger.jsonl``
(``--no-ledger`` or ``REPRO_LEDGER=0`` skips it); render the history
with ``python -m repro report``.
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import EXPERIMENTS, run_all
from repro.obs import LedgerError, Obs, use_obs, write_chrome_trace, write_jsonl


def main(argv: list[str]) -> int:
    args = list(argv)

    def flag(name: str) -> bool:
        if name in args:
            args.remove(name)
            return True
        return False

    full = flag("--full")
    want_profile = flag("--profile")
    no_ledger = flag("--no-ledger")

    def path_option(name: str) -> str | None:
        if name not in args:
            return None
        index = args.index(name)
        args.pop(index)
        if index >= len(args):
            print(f"missing value for {name}", file=sys.stderr)
            raise SystemExit(2)
        return args.pop(index)

    save_dir = path_option("--save")
    if save_dir:
        os.makedirs(save_dir, exist_ok=True)
    trace_path = path_option("--trace")
    chrome_path = path_option("--chrome-trace")
    jobs = path_option("--jobs")
    if jobs is not None:
        try:
            int(jobs)
        except ValueError:
            print(f"--jobs needs an integer, got {jobs!r}", file=sys.stderr)
            raise SystemExit(2)
        os.environ["REPRO_JOBS"] = jobs
    names = [a for a in args if not a.startswith("-")]

    def deliver(name: str, text: str) -> None:
        print(text)
        print()
        if save_dir:
            with open(os.path.join(save_dir, f"{name}.txt"), "w") as handle:
                handle.write(text + "\n")

    # One context for every observability sink (see docs/observability.md).
    want_obs = bool(trace_path or chrome_path or want_profile or not no_ledger)
    obs = Obs(profile=want_profile) if want_obs else None
    tracing_memory = False
    if want_profile:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            tracing_memory = True
    ran: list[str] = []
    if names:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {unknown}")
            print(f"available: {', '.join(EXPERIMENTS)}")
            return 2
        with use_obs(obs) as active:
            for name in names:
                module = EXPERIMENTS[name]
                start = time.time()
                with active.span(f"experiment.{name}"):
                    deliver(name, module.render(module.run()))
                ran.append(name)
                print(f"[{name}: {time.time() - start:.1f}s]\n")
    else:
        with use_obs(obs):
            for name, text in run_all(quick=not full).items():
                deliver(name, text)
                ran.append(name)
    if want_profile and obs is not None:
        from repro.obs import render_profile

        if tracing_memory:
            import tracemalloc

            tracemalloc.stop()
        print("\n--- phase profile ---", file=sys.stderr)
        print(render_profile(obs.tracer.spans, obs.metrics, title=""),
              file=sys.stderr)
    if obs is not None and trace_path:
        records = write_jsonl(obs, trace_path)
        print(f"wrote {records} trace records to {trace_path}", file=sys.stderr)
    if obs is not None and chrome_path:
        events = write_chrome_trace(obs, chrome_path)
        print(
            f"wrote {events} trace events to {chrome_path} "
            f"(load at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    if not no_ledger and obs is not None:
        from repro.obs import ledger

        try:
            ledger.append_record(
                ledger.make_record(
                    "experiments",
                    list(argv),
                    config={"experiments": ran, "full": full,
                            "jobs": os.environ.get("REPRO_JOBS", "1")},
                    phases=ledger.phases_from_obs(obs),
                    metrics=ledger.counters_from_obs(obs),
                )
            )
        except LedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
