"""CLI: ``python -m repro.experiments [names...] [--full] [--save DIR]``.

Runs the requested experiments (default: all) and prints the paper-style
tables; ``--save DIR`` additionally writes each rendered table to
``DIR/<name>.txt`` so EXPERIMENTS.md can be refreshed from artifacts.
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import EXPERIMENTS, run_all


def main(argv: list[str]) -> int:
    args = list(argv)
    full = "--full" in args
    if full:
        args.remove("--full")
    save_dir = None
    if "--save" in args:
        index = args.index("--save")
        args.pop(index)
        if index >= len(args):
            print("missing directory for --save", file=sys.stderr)
            return 2
        save_dir = args.pop(index)
        os.makedirs(save_dir, exist_ok=True)
    names = [a for a in args if not a.startswith("-")]

    def deliver(name: str, text: str) -> None:
        print(text)
        print()
        if save_dir:
            with open(os.path.join(save_dir, f"{name}.txt"), "w") as handle:
                handle.write(text + "\n")

    if names:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {unknown}")
            print(f"available: {', '.join(EXPERIMENTS)}")
            return 2
        for name in names:
            module = EXPERIMENTS[name]
            start = time.time()
            deliver(name, module.render(module.run()))
            print(f"[{name}: {time.time() - start:.1f}s]\n")
        return 0
    for name, text in run_all(quick=not full).items():
        deliver(name, text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
