"""CLI: ``python -m repro.experiments [names...] [--full] [--save DIR]
[--trace FILE] [--jobs N]``.

Runs the requested experiments (default: all) and prints the paper-style
tables; ``--save DIR`` additionally writes each rendered table to
``DIR/<name>.txt`` so EXPERIMENTS.md can be refreshed from artifacts.
``--trace FILE`` records per-experiment (and per-kernel) spans plus
pipeline metrics to a JSONL file, making benchmark regressions
diagnosable from the trace alone. ``--jobs N`` shards the per-kernel
simulations of the table experiments across N worker processes
(equivalent to setting ``REPRO_JOBS=N``); results are identical to a
serial run.
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import EXPERIMENTS, run_all
from repro.obs import Obs, use_obs, write_jsonl


def main(argv: list[str]) -> int:
    args = list(argv)
    full = "--full" in args
    if full:
        args.remove("--full")

    def path_option(name: str) -> str | None:
        if name not in args:
            return None
        index = args.index(name)
        args.pop(index)
        if index >= len(args):
            print(f"missing value for {name}", file=sys.stderr)
            raise SystemExit(2)
        return args.pop(index)

    save_dir = path_option("--save")
    if save_dir:
        os.makedirs(save_dir, exist_ok=True)
    trace_path = path_option("--trace")
    jobs = path_option("--jobs")
    if jobs is not None:
        try:
            int(jobs)
        except ValueError:
            print(f"--jobs needs an integer, got {jobs!r}", file=sys.stderr)
            raise SystemExit(2)
        os.environ["REPRO_JOBS"] = jobs
    names = [a for a in args if not a.startswith("-")]

    def deliver(name: str, text: str) -> None:
        print(text)
        print()
        if save_dir:
            with open(os.path.join(save_dir, f"{name}.txt"), "w") as handle:
                handle.write(text + "\n")

    obs = Obs() if trace_path else None
    if names:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {unknown}")
            print(f"available: {', '.join(EXPERIMENTS)}")
            return 2
        with use_obs(obs) as active:
            for name in names:
                module = EXPERIMENTS[name]
                start = time.time()
                with active.span(f"experiment.{name}"):
                    deliver(name, module.render(module.run()))
                print(f"[{name}: {time.time() - start:.1f}s]\n")
    else:
        with use_obs(obs):
            for name, text in run_all(quick=not full).items():
                deliver(name, text)
    if obs is not None and trace_path:
        records = write_jsonl(obs, trace_path)
        print(f"wrote {records} trace records to {trace_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
