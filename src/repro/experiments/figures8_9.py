"""Figures 8 and 9: distribution of memory-order achievement.

Figure 8 buckets programs by the percentage of their *nests* in memory
order, original vs transformed; Figure 9 does the same for *inner loop*
position. The paper's headline: after transformation the majority of
programs have >= 80% of nests — and >= 90% of inner loops — positioned
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import CostModel
from repro.stats import collect_program_stats, render_histogram
from repro.suite import get_set

__all__ = ["FigureBuckets", "run", "render"]

_BUCKETS = ((0, 49), (50, 69), (70, 79), (80, 89), (90, 100))


def _bucket_label(lo: int, hi: int) -> str:
    return f"{lo}-{hi}%"


@dataclass
class FigureBuckets:
    nests_original: dict[str, int]
    nests_transformed: dict[str, int]
    inner_original: dict[str, int]
    inner_transformed: dict[str, int]

    def share_at_least(self, counts: dict[str, int], lo: int) -> float:
        total = sum(counts.values())
        if not total:
            return 0.0
        qualifying = sum(
            count
            for (bucket_lo, _), count in zip(_BUCKETS, counts.values())
            if bucket_lo >= lo
        )
        return qualifying / total


def _empty() -> dict[str, int]:
    return {_bucket_label(lo, hi): 0 for lo, hi in _BUCKETS}


def _place(counts: dict[str, int], pct: int) -> None:
    for lo, hi in _BUCKETS:
        if lo <= pct <= hi:
            counts[_bucket_label(lo, hi)] += 1
            return


def run(n: int = 16, cls: int = 4) -> FigureBuckets:
    result = FigureBuckets(_empty(), _empty(), _empty(), _empty())
    for entry in get_set("paper").entries():
        stats, _ = collect_program_stats(entry.program(n), CostModel(cls=cls))
        if stats.nests == 0:
            continue
        orig = stats.pct(stats.memory_order_orig)
        final = stats.pct(stats.memory_order_orig + stats.memory_order_perm)
        _place(result.nests_original, orig)
        _place(result.nests_transformed, final)
        inner_orig = stats.pct(stats.inner_orig)
        inner_final = stats.pct(stats.inner_orig + stats.inner_perm)
        _place(result.inner_original, inner_orig)
        _place(result.inner_transformed, inner_final)
    return result


def render(result: FigureBuckets) -> str:
    parts = [
        render_histogram(
            result.nests_original, "Figure 8a: % nests in memory order (original)"
        ),
        render_histogram(
            result.nests_transformed,
            "Figure 8b: % nests in memory order (transformed)",
        ),
        render_histogram(
            result.inner_original,
            "Figure 9a: % inner loops in position (original)",
        ),
        render_histogram(
            result.inner_transformed,
            "Figure 9b: % inner loops in position (transformed)",
        ),
    ]
    return "\n\n".join(parts)
