"""Figure 7: Cholesky factorization — model ranking vs simulated time.

The paper generates all loop organizations of Cholesky (with the minimal
distribution each requires), predicts their order with the cost model,
and shows Compound attains the best-performing structure. We simulate
all six classic forms and check the model's ranking and Compound's pick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import Machine, simulate
from repro.model import CostModel
from repro.suite.kernels import CHOLESKY_FORMS, cholesky
from repro.stats.report import render_table
from repro.transforms import compound
from repro.experiments.common import MACHINE2

__all__ = ["Figure7Result", "run", "render"]


@dataclass
class Figure7Result:
    n: int
    model_ranking: tuple[str, ...]  # from the KIJ nest's LoopCost
    cycles: dict[str, int]  # per form
    compound_cycles: int  # Compound applied to the KIJ original

    @property
    def simulated_ranking(self) -> tuple[str, ...]:
        return tuple(sorted(self.cycles, key=self.cycles.get))

    @property
    def model_picks_best_inner(self) -> bool:
        """The forms with the model's preferred inner loop (I) beat the
        rest."""
        best = self.simulated_ranking[0]
        return best.endswith(self.model_ranking[0][-1])

    @property
    def compound_matches_best(self) -> bool:
        """Compound's output is within 5% of the best simulated form."""
        best = min(self.cycles.values())
        return self.compound_cycles <= best * 1.05


def run(n: int = 96, machine: Machine | None = None) -> Figure7Result:
    machine = machine or MACHINE2
    model = CostModel(cls=4)
    ranking = tuple(
        "".join(order)
        for order in model.rank_permutations(cholesky(16, "KIJ").top_loops[0])
    )
    cycles = {
        form: simulate(cholesky(n, form), machine).cycles
        for form in CHOLESKY_FORMS
    }
    transformed = compound(cholesky(n, "KIJ"), CostModel(cls=4)).program
    compound_cycles = simulate(transformed, machine).cycles
    return Figure7Result(n, ranking, cycles, compound_cycles)


def render(result: Figure7Result) -> str:
    rows = [
        {
            "Form": form,
            "Cycles": result.cycles[form],
            "vs best": round(result.cycles[form] / min(result.cycles.values()), 2),
        }
        for form in result.simulated_ranking
    ]
    rows.append(
        {
            "Form": "Compound(KIJ)",
            "Cycles": result.compound_cycles,
            "vs best": round(
                result.compound_cycles / min(result.cycles.values()), 2
            ),
        }
    )
    return (
        f"Figure 7: Cholesky (N={result.n}), model ranking: "
        f"{' '.join(result.model_ranking)}\n" + render_table(rows)
    )
