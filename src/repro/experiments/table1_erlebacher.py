"""Table 1: Erlebacher — hand-coded vs distributed vs fused.

The paper measures three versions on three machines: the hand-coded
original (single-statement loops, memory order), the memory-order
distributed version, and the fused version. Fusion wins by up to 17%.

Our 'hand' version is already in memory order; 'distributed' is the
vector-style version permuted into memory order nest-by-nest (no
fusion); 'fused' is the full Compound output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import Machine, simulate
from repro.ir.nodes import Loop
from repro.model import CostModel
from repro.suite.kernels import erlebacher
from repro.stats.report import render_table
from repro.transforms import compound, permute_nest
from repro.experiments.common import MACHINE1, MACHINE2, SPARC_MACHINE

__all__ = ["Table1Result", "run", "render"]

_MACHINES = {"sparc2": SPARC_MACHINE, "i860": MACHINE2, "rs6000": MACHINE1}


@dataclass
class Table1Result:
    n: int
    cycles: dict[tuple[str, str], int]  # (machine, version) -> cycles

    def fusion_speedup(self, machine: str) -> float:
        return self.cycles[(machine, "hand")] / self.cycles[(machine, "fused")]

    @property
    def fused_always_best(self) -> bool:
        machines = {m for m, _ in self.cycles}
        return all(
            self.cycles[(m, "fused")]
            <= min(self.cycles[(m, "hand")], self.cycles[(m, "distributed")])
            for m in machines
        )


def _distributed_memory_order(n: int):
    """The vector-style program with each nest permuted to memory order."""
    program = erlebacher(n, "distributed")
    model = CostModel(cls=4)
    body = []
    for item in program.body:
        if isinstance(item, Loop):
            body.append(permute_nest(item, model).loop)
        else:
            body.append(item)
    return program.with_body(body)


def run(n: int = 24, machines: dict | None = None) -> Table1Result:
    machines = machines or _MACHINES
    versions = {
        "hand": erlebacher(n, "hand"),
        "distributed": _distributed_memory_order(n),
        "fused": compound(erlebacher(n, "distributed"), CostModel(cls=4)).program,
    }
    cycles = {}
    for machine_name, machine in machines.items():
        for version_name, program in versions.items():
            cycles[(machine_name, version_name)] = simulate(program, machine).cycles
    return Table1Result(n, cycles)


def render(result: Table1Result) -> str:
    machines = sorted({m for m, _ in result.cycles})
    rows = []
    for machine in machines:
        rows.append(
            {
                "Machine": machine,
                "Hand": result.cycles[(machine, "hand")],
                "Distributed": result.cycles[(machine, "distributed")],
                "Fused": result.cycles[(machine, "fused")],
                "Fusion speedup": round(result.fusion_speedup(machine), 3),
            }
        )
    return (
        f"Table 1: Erlebacher (N={result.n}), simulated cycles\n"
        + render_table(rows)
    )
