"""Experiment harness: one module per table/figure in the paper.

Each module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the paper-style text table. ``run_all``
executes everything at the given scale.
"""

from repro.experiments import (
    figure2_matmul,
    figure3_adi,
    figure7_cholesky,
    figures8_9,
    table1_erlebacher,
    table2_stats,
    table3_perf,
    table4_analytic,
    table4_hitrates,
    table5_access,
    table_autotune,
)

__all__ = [
    "figure2_matmul",
    "figure3_adi",
    "figure7_cholesky",
    "figures8_9",
    "table1_erlebacher",
    "table2_stats",
    "table3_perf",
    "table4_analytic",
    "table4_hitrates",
    "table5_access",
    "table_autotune",
    "run_all",
]

EXPERIMENTS = {
    "figure2": figure2_matmul,
    "figure3": figure3_adi,
    "figure7": figure7_cholesky,
    "table1": table1_erlebacher,
    "table2": table2_stats,
    "table3": table3_perf,
    "table4": table4_hitrates,
    "table4_analytic": table4_analytic,
    "table5": table5_access,
    "table_autotune": table_autotune,
    "figures8_9": figures8_9,
}


def run_all(quick: bool = True) -> dict[str, str]:
    """Run every experiment; returns rendered text keyed by experiment id.

    ``quick=True`` uses small problem sizes (seconds); ``quick=False``
    runs the publication sizes (minutes).
    """
    out: dict[str, str] = {}
    out["figure2"] = figure2_matmul.render(
        figure2_matmul.run(sizes=(24, 48) if quick else (48, 96))
    )
    out["figure3"] = figure3_adi.render(figure3_adi.run())
    out["figure7"] = figure7_cholesky.render(
        figure7_cholesky.run(n=48 if quick else 96)
    )
    out["table1"] = table1_erlebacher.render(
        table1_erlebacher.run(n=16 if quick else 24)
    )
    out["table2"] = table2_stats.render(table2_stats.run(n=16))
    out["table3"] = table3_perf.render(
        table3_perf.run(scale=0.75 if quick else 1.0)
    )
    out["table4"] = table4_hitrates.render(
        table4_hitrates.run(scale=0.75 if quick else 1.0)
    )
    out["table4_analytic"] = table4_analytic.render(
        table4_analytic.run(scale=0.5 if quick else 1.0)
    )
    out["table5"] = table5_access.render(table5_access.run())
    out["table_autotune"] = table_autotune.render(
        table_autotune.run(
            sizes=table_autotune.SIZES_QUICK
            if quick
            else table_autotune.SIZES_FULL
        )
    )
    out["figures8_9"] = figures8_9.render(figures8_9.run())
    return out
