"""Table 4-analytic: predicted vs simulated hit rates, no trace needed.

Companion to :mod:`repro.experiments.table4_hitrates`: for every suite
program (original and compound-transformed), the analytic locality
predictor (:mod:`repro.locality.analytic`) derives fully-associative
LRU hit rates straight from the subscripts, and the exact trace-driven
reuse-distance profile provides the ground truth. Two FA geometries
bracket the paper's machines:

* ``fa1`` — 64 KB, 128 B lines (512 lines), the RS/6000 capacity;
* ``fa2`` — 8 KB, 32 B lines (256 lines), the i860 capacity.

The point of the table is the error column: the predictor replaces an
O(accesses) simulation with an O(nest) computation, and stays within a
couple of percentage points on the whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.reuse import reuse_profile
from repro.locality import predict_locality
from repro.model import CostModel
from repro.stats.report import render_table
from repro.suite import get_entry, get_set
from repro.transforms import compound
from repro.experiments.common import run_sharded
from repro.experiments.table3_perf import problem_size

__all__ = ["FA_CONFIGS", "AnalyticRow", "Table4AnalyticResult", "run", "render"]

#: Fully-associative geometries: name -> (line bytes, capacity in lines).
FA_CONFIGS: dict[str, tuple[int, int]] = {
    "fa1": (128, 512),  # 64 KB, RS/6000-sized
    "fa2": (32, 256),  # 8 KB, i860-sized
}


@dataclass
class AnalyticRow:
    name: str
    version: str  # "orig" | "final"
    accesses: int
    # config -> hit rate (cold excluded), and the analytic prediction
    simulated: dict[str, float]
    predicted: dict[str, float]
    exact_path: bool

    def error(self, config: str) -> float:
        return abs(self.predicted[config] - self.simulated[config])


@dataclass
class Table4AnalyticResult:
    rows: list[AnalyticRow]

    def row(self, name: str, version: str = "orig") -> AnalyticRow:
        for row in self.rows:
            if row.name == name and row.version == version:
                return row
        raise KeyError((name, version))

    def worst_error(self) -> float:
        return max(
            (row.error(config) for row in self.rows for config in row.simulated),
            default=0.0,
        )


def _entry_rows(
    name: str,
    scale: float,
    cls: int,
    config_items: tuple[tuple[str, tuple[int, int]], ...],
) -> list[AnalyticRow]:
    """Both versions of one suite program; module-level so shards pickle."""
    entry = get_entry(name)
    n = problem_size(name, scale)
    program = entry.program(n)
    final = compound(program, CostModel(cls=cls)).program
    rows = []
    for version_name, version in (("orig", program), ("final", final)):
        simulated: dict[str, float] = {}
        predicted: dict[str, float] = {}
        accesses = 0
        exact_path = False
        for config_name, (line, lines) in config_items:
            trace = reuse_profile(version, line=line, max_accesses=1 << 25)
            prediction = predict_locality(version, line=line)
            simulated[config_name] = trace.hit_rate_for_capacity(lines)
            predicted[config_name] = prediction.hit_rate_for_capacity(lines)
            accesses = trace.accesses
            exact_path = prediction.exact
        rows.append(
            AnalyticRow(name, version_name, accesses, simulated, predicted, exact_path)
        )
    return rows


def run(
    scale: float = 1.0,
    cls: int = 4,
    configs: dict[str, tuple[int, int]] | None = None,
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
) -> Table4AnalyticResult:
    configs = configs or FA_CONFIGS
    config_items = tuple(configs.items())
    selected = [
        entry.name
        for entry in get_set("paper").entries()
        if not names or entry.name in names
    ]
    sharded = run_sharded(
        _entry_rows,
        [(name, scale, cls, config_items) for name in selected],
        jobs,
    )
    return Table4AnalyticResult([row for rows in sharded for row in rows])


def render(result: Table4AnalyticResult) -> str:
    configs = sorted({c for row in result.rows for c in row.simulated})
    rows = []
    for row in result.rows:
        cells: dict = {"Program": row.name, "Ver": row.version}
        for config in configs:
            cells[f"{config} sim"] = round(100 * row.simulated[config], 2)
            cells[f"{config} pred"] = round(100 * row.predicted[config], 2)
            cells[f"{config} err"] = round(100 * row.error(config), 2)
        rows.append(cells)
    return (
        "Table 4-analytic: predicted vs simulated FA-LRU hit rates, %, "
        "cold misses excluded\n"
        f"(fa1 = 64KB/128B, fa2 = 8KB/32B; worst error "
        f"{100 * result.worst_error():.2f}pp)\n" + render_table(rows)
    )
