"""repro — a reproduction of Carr, McKinley & Tseng,
"Compiler Optimizations for Improving Data Locality" (ASPLOS 1994).

The package implements the paper's cache cost model (RefGroup / RefCost /
LoopCost), the compound loop transformations (permutation, reversal,
fusion, distribution), and every substrate the evaluation needs: a
mini-Fortran frontend, data dependence analysis, a loop-nest interpreter
and trace compiler, set-associative cache simulation, and the benchmark
suite + experiment harness that regenerates the paper's tables and
figures.

Typical use::

    from repro import parse_program, CostModel, compound, simulate

    program = parse_program(source)
    outcome = compound(program, CostModel(cls=4))
    perf = simulate(outcome.program)
"""

from repro.cache import CACHE1, CACHE2, CacheConfig, CacheStats, SetAssocCache
from repro.errors import (
    DependenceError,
    ExecutionError,
    IRError,
    NonAffineError,
    ParseError,
    ReproError,
    TransformError,
)
from repro.exec import Interpreter, Machine, PerfResult, run_program, simulate
from repro.frontend import parse_program
from repro.ir import (
    Affine,
    ArrayDecl,
    Assign,
    Loop,
    Program,
    ProgramBuilder,
    Ref,
    pretty_program,
    validate_program,
)
from repro.model import CostModel, CostPoly
from repro.obs import (
    MetricsRegistry,
    Obs,
    Remark,
    Tracer,
    get_obs,
    set_obs,
    use_obs,
)
from repro.stats import collect_access_properties, collect_program_stats
from repro.transforms import (
    CompoundOutcome,
    compound,
    distribute_nest,
    fuse_adjacent,
    permute_nest,
)

__version__ = "1.0.0"

__all__ = [
    "Affine",
    "ArrayDecl",
    "Assign",
    "CACHE1",
    "CACHE2",
    "CacheConfig",
    "CacheStats",
    "CompoundOutcome",
    "CostModel",
    "CostPoly",
    "DependenceError",
    "ExecutionError",
    "IRError",
    "Interpreter",
    "Loop",
    "Machine",
    "MetricsRegistry",
    "NonAffineError",
    "Obs",
    "ParseError",
    "PerfResult",
    "Program",
    "ProgramBuilder",
    "Ref",
    "Remark",
    "ReproError",
    "SetAssocCache",
    "Tracer",
    "TransformError",
    "collect_access_properties",
    "collect_program_stats",
    "compound",
    "distribute_nest",
    "fuse_adjacent",
    "get_obs",
    "parse_program",
    "permute_nest",
    "pretty_program",
    "run_program",
    "set_obs",
    "simulate",
    "use_obs",
    "validate_program",
    "__version__",
]
