"""Greedy minimizer for failing fuzz programs.

Given a failing program and a predicate ("this still fails the same
way"), repeatedly tries structural simplifications — dropping nests and
statements, unrolling a loop level away, shrinking trip counts,
truncating right-hand sides, simplifying subscripts — keeping any edit
that preserves the failure, until no edit does.  Every candidate is
validated to stay a well-formed in-bounds program (no negative or
wrapped subscripts), so the printed repro is a real Fortran program, not
a Python accident.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.ir.affine import Affine
from repro.ir.expr import Bin, Expr, Ref
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program
from repro.ir.visit import substitute_expr
from repro.verify.depforce import enumerate_accesses

__all__ = ["shrink_program", "program_in_bounds"]

#: Global cap on predicate evaluations per shrink (each runs the trials).
_MAX_EVALS = 400


def program_in_bounds(program: Program) -> bool:
    """Every dynamic access lands inside its declared extents."""
    extents = {
        decl.name: decl.extents(program.param_env) for decl in program.arrays
    }
    try:
        accesses = enumerate_accesses(program, program.param_env)
    except Exception:
        return False
    for array, location, _access in accesses:
        shape = extents.get(array)
        if shape is None or len(shape) != len(location):
            return False
        if any(not 1 <= x <= e for x, e in zip(location, shape)):
            return False
    return True


def shrink_program(
    program: Program,
    predicate: Callable[[Program], bool],
    max_evals: int = _MAX_EVALS,
) -> Program:
    """Greedily minimize ``program`` while ``predicate`` stays true."""
    current = program
    evals = 0
    progressed = True
    while progressed and evals < max_evals:
        progressed = False
        for candidate in _candidates(current):
            candidate = candidate.renumbered()
            if not candidate.statements:
                continue
            if not program_in_bounds(candidate):
                continue
            evals += 1
            if predicate(candidate):
                current = candidate
                progressed = True
                break
            if evals >= max_evals:
                break
    return _tighten_decls(current, predicate)


# ----------------------------------------------------------------------
# Candidate edits
# ----------------------------------------------------------------------
def _candidates(program: Program) -> Iterator[Program]:
    """Candidate simplifications, most aggressive first."""
    body = program.body
    # 1. Drop a whole top-level item.
    if len(body) > 1:
        for i in range(len(body)):
            yield program.with_body(body[:i] + body[i + 1 :])
    # 2. Remove one loop level (substitute its variable with the lower bound).
    for path, node in _paths(program):
        if isinstance(node, Loop):
            hoisted = [_bind_var(child, node.var, node.lb) for child in node.body]
            yield _replace_at(program, path, hoisted)
    # 3. Drop one statement.
    for path, node in _paths(program):
        if isinstance(node, Assign):
            yield _replace_at(program, path, [])
    # 4. Shrink a loop's span.
    for path, node in _paths(program):
        if not isinstance(node, Loop):
            continue
        span = node.ub - node.lb
        if not span.is_constant():
            continue
        trip = abs(span.const // node.step) + 1
        for new_trip in (1, 2, trip // 2):
            if not 1 <= new_trip < trip:
                continue
            new_ub = node.lb + node.step * (new_trip - 1)
            yield _replace_at(
                program, path, [Loop(node.var, node.lb, new_ub, node.step, node.body)]
            )
    # 5. Truncate a statement's right-hand side.
    for path, node in _paths(program):
        if isinstance(node, Assign) and isinstance(node.rhs, Bin):
            for side in (node.rhs.left, node.rhs.right):
                yield _replace_at(program, path, [Assign(node.lhs, side, node.sid)])
    # 6. Simplify a subscript: drop a term or zero the offset.
    for path, node in _paths(program):
        if not isinstance(node, Assign):
            continue
        for simplified in _simplify_refs(node):
            yield _replace_at(program, path, [simplified])


def _paths(program: Program) -> Iterator[tuple[tuple[int, ...], "Loop | Assign"]]:
    def walk(nodes, prefix):
        for i, node in enumerate(nodes):
            path = prefix + (i,)
            yield path, node
            if isinstance(node, Loop):
                yield from walk(node.body, path)

    yield from walk(program.body, ())


def _replace_at(program: Program, path: tuple[int, ...], replacement) -> Program:
    def rebuild(nodes, depth):
        out = []
        for i, node in enumerate(nodes):
            if i != path[depth]:
                out.append(node)
            elif depth == len(path) - 1:
                out.extend(replacement)
            else:
                out.append(node.with_body(rebuild(node.body, depth + 1)))
        return out

    return program.with_body(rebuild(program.body, 0))


def _bind_var(node, var: str, value: Affine):
    """Substitute ``var := value`` throughout a subtree (loop removal)."""
    if isinstance(node, Assign):
        return Assign(
            node.lhs.substitute(var, value),
            substitute_expr(node.rhs, var, value),
            node.sid,
        )
    lb = node.lb.substitute(var, value)
    ub = node.ub.substitute(var, value)
    body = tuple(_bind_var(child, var, value) for child in node.body)
    return Loop(node.var, lb, ub, node.step, body)


def _simplify_refs(stmt: Assign) -> Iterator[Assign]:
    refs = list(dict.fromkeys(walk_all_refs(stmt)))
    for target in refs:
        for dim, sub in enumerate(target.subs):
            if sub.terms:
                for name, _coeff in sub.terms:
                    smaller = Affine.build(
                        {n: c for n, c in sub.terms if n != name}, sub.const
                    )
                    yield _rewrite_ref(stmt, target, dim, smaller)
            if sub.const not in (0, 1):
                yield _rewrite_ref(
                    stmt, target, dim, Affine.build(dict(sub.terms), 1)
                )


def walk_all_refs(stmt: Assign) -> list[Ref]:
    return list(stmt.refs)


def _rewrite_ref(stmt: Assign, target: Ref, dim: int, new_sub: Affine) -> Assign:
    new_subs = tuple(
        new_sub if i == dim else s for i, s in enumerate(target.subs)
    )
    new_ref = Ref(target.array, new_subs)

    def rewrite_expr(expr: Expr) -> Expr:
        if expr is target:
            return new_ref
        if isinstance(expr, Bin):
            return Bin(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        return expr

    lhs = new_ref if stmt.lhs is target else stmt.lhs
    return Assign(lhs, rewrite_expr(stmt.rhs), stmt.sid)


def _tighten_decls(
    program: Program, predicate: Callable[[Program], bool]
) -> Program:
    """Drop unused arrays and clamp extents to the touched region."""
    touched: dict[str, list[int]] = {}
    for array, location, _access in enumerate_accesses(program, program.param_env):
        hi = touched.setdefault(array, [1] * len(location))
        for dim, x in enumerate(location):
            hi[dim] = max(hi[dim], x)
    decls = [
        ArrayDecl.make(name, hi) if name in touched else None
        for name, hi in (
            (decl.name, touched.get(decl.name)) for decl in program.arrays
        )
        if hi is not None
    ]
    tightened = Program(
        program.name, program.params, tuple(decls), program.body
    )
    if program_in_bounds(tightened) and predicate(tightened):
        return tightened
    return program
