"""Fuzz oracle for the autotuner: chosen configs are legal and monotone.

For a generated program the oracle runs a small budgeted search and
re-checks the autotuner's public promises from scratch:

* **legality provenance** — every search-produced candidate's per-nest
  plan must carry an approved legality slug, and any reordered plan is
  re-audited against :func:`repro.transforms.legality.order_is_legal`
  over a fresh dependence analysis of the *original* nest in its
  variant;
* **miss monotonicity** — the chosen config's predicted miss count must
  not exceed the original program's (the pool seeds the original, so the
  argmin can never regress);
* **compound dominance** — the chosen config must also be at least as
  good as the paper's compound-algorithm output on predicted misses;
* **execution equivalence** — the chosen program must produce
  bit-identical final state at a shrunken problem size, independently of
  the search's own verification pass.

A violation is returned as a :class:`TuneMismatch` for the fuzz runner
to report; ``None`` means the case is clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.ir.nodes import Loop, Program

__all__ = ["TuneMismatch", "check_autotune", "ORACLE_LINE", "ORACLE_CAPACITY"]

#: Cache geometry the oracle scores with (matches the lint fuzz oracle:
#: small capacity so fuzz-sized programs have non-zero miss ratios).
ORACLE_LINE = 128
ORACLE_CAPACITY = 64

#: Search budget per fuzz case — small, the programs have 1-3 nests.
ORACLE_BUDGET = 24

#: Slack when comparing predicted miss counts.
_MISS_EPS = 1e-9

#: Legality slugs the space enumeration is allowed to stamp on a plan.
_APPROVED = frozenset({"original", "checked"})


@dataclass(frozen=True)
class TuneMismatch:
    where: str  # "plan-legality" | "order-illegal" | "monotone" | "compound" | "state" | "crash"
    detail: str


def _state_equal(original: Program, candidate: Program) -> str | None:
    """Compare shrunken final states on shared arrays; None when equal."""
    from repro.lint.verifyfix import _shrunk
    from repro.verify.oracles import run_state

    base = run_state(_shrunk(original))
    state = run_state(_shrunk(candidate))
    differing = sorted(
        name for name in set(base) & set(state) if base[name] != state[name]
    )
    if differing:
        return ", ".join(differing)
    return None


def _audit_plans(result) -> TuneMismatch | None:
    """Re-check every candidate's per-nest legality provenance."""
    from repro.transforms.legality import constraining_vectors, order_is_legal

    for candidate in result.ranked:
        for plan in candidate.plans:
            if plan.legality not in _APPROVED:
                return TuneMismatch(
                    "plan-legality",
                    f"candidate {candidate.describe()!r}: plan for nest "
                    f"{plan.slot} carries unapproved slug {plan.legality!r}",
                )
            if plan.order == plan.original or plan.tiles:
                # Untouched orders are vacuously legal; tiled plans went
                # through tile_nest's full-permutability check, which is
                # strictly stronger than per-order legality.
                continue
            # Re-audit the reorder against the *result* nest: a legal
            # permutation preserves every dependence, so the inverse
            # order restoring the original must itself be legal over the
            # transformed nest's (re-analyzed) vectors; an illegal
            # reorder flips a dependence and fails this audit.
            item = candidate.program.body[plan.slot]
            if not isinstance(item, Loop):
                return TuneMismatch(
                    "plan-legality",
                    f"candidate {candidate.describe()!r}: plan slot "
                    f"{plan.slot} is not a loop nest",
                )
            chain = item.perfect_nest_loops()
            achieved = tuple(loop.var for loop in chain)
            if achieved != plan.order:
                return TuneMismatch(
                    "plan-legality",
                    f"candidate {candidate.describe()!r}: plan claims order "
                    f"{plan.order}, nest has {achieved}",
                )
            vectors = constraining_vectors(item)
            back = [plan.order.index(var) for var in plan.original]
            if not order_is_legal(vectors, back):
                return TuneMismatch(
                    "order-illegal",
                    f"candidate {candidate.describe()!r}: order "
                    f"{'.'.join(plan.order)} of nest {plan.slot} fails the "
                    f"legality checker",
                )
    return None


def check_autotune(program: Program) -> TuneMismatch | None:
    """Run a budgeted search over ``program`` and re-check its promises."""
    from repro.autotune import autotune

    try:
        result = autotune(
            program,
            line=ORACLE_LINE,
            capacity=ORACLE_CAPACITY,
            budget=ORACLE_BUDGET,
            beam=2,
            topk=0,
        )
        mismatch = _audit_plans(result)
        if mismatch is not None:
            return mismatch
        best, original = result.best, result.original
        assert best.cost is not None and original.cost is not None
        if best.cost.misses > original.cost.misses + _MISS_EPS:
            return TuneMismatch(
                "monotone",
                f"chosen config {best.describe()!r} predicts "
                f"{best.cost.misses} misses vs original "
                f"{original.cost.misses} (regression)",
            )
        compound_cand = result.compound
        assert compound_cand.cost is not None
        compound_rejected = any(d == "compound" for d, _ in result.rejected)
        if (
            best.cost.misses > compound_cand.cost.misses + _MISS_EPS
            and not compound_rejected
        ):
            # Dominance holds whenever the compound seed itself survived
            # the verification walk (it sits in the ranked pool, so the
            # first verified candidate can never score worse than it).
            return TuneMismatch(
                "compound",
                f"chosen config {best.describe()!r} predicts "
                f"{best.cost.misses} misses vs compound "
                f"{compound_cand.cost.misses}",
            )
        differing = _state_equal(program, best.program)
        if differing:
            return TuneMismatch(
                "state",
                f"chosen config {best.describe()!r}: arrays differ: "
                f"{differing}",
            )
    except (ReproError, ArithmeticError, ValueError, IndexError, KeyError) as exc:
        return TuneMismatch("crash", f"{type(exc).__name__}: {exc}")
    return None
