"""Fuzz driver: generate nests, run every oracle, shrink failures.

Entry point behind ``python -m repro verify --fuzz N --seed S``.  Each
case is pinned by ``(seed, case-index)``, so any failure is reproducible
from the two integers the report prints; ``replay_case`` regenerates and
re-checks a single case programmatically.

Per case the driver runs the full oracle hierarchy:

1. **dependence cross-check** — analytic vectors must cover the
   brute-force set (:mod:`repro.verify.depforce`);
2. **execution equivalence** — every legality-admitted transform trial
   must leave the final array state bit-identical
   (:mod:`repro.verify.oracles`); rejected-but-equivalent trials are
   counted as over-conservatism, never failures;
3. **cache-engine equivalence** — scalar vs batched simulation on random
   streams and geometries (:mod:`repro.verify.cachecheck`);
4. **locality prediction** — the analytic reuse-distance predictor vs
   the exact trace histogram: engine agreement, mass conservation,
   bit-exactness on the exact-claimed class, and a bounded hit-rate
   envelope on the model path (:mod:`repro.verify.localitycheck`);
5. **lint fix-its** — every fix-it the lint engine attaches must be
   execution-equivalent and never increase the predicted miss count,
   and the ``--fix`` driver must be monotone end to end
   (:mod:`repro.verify.lintcheck`);
6. **autotuner** — a budgeted search must return only
   legality-checker-approved configurations whose predicted miss count
   is <= the original's (and <= the compound algorithm's), with the
   chosen program execution-equivalent to the input
   (:mod:`repro.verify.tunecheck`).

Counters and remarks flow through :mod:`repro.obs`; a failure remark
carries the reason slug of the legality decision that admitted the
transform (``order-legal``, ``fusion-safe``, ...).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.dependence.pairs import region_dependences
from repro.ir.nodes import Program
from repro.ir.pretty import pretty_program
from repro.model.loopcost import CostModel
from repro.obs import get_obs
from repro.verify.cachecheck import CacheMismatch, run_cache_check
from repro.verify.depforce import analysis_covers, brute_force_dependences
from repro.verify.gennest import DEFAULT_CONFIG, GenConfig, generate_program
from repro.verify.lintcheck import LintMismatch, check_lint
from repro.verify.localitycheck import LocalityMismatch, check_locality
from repro.verify.oracles import TrialResult, check_trial, run_state, transform_trials
from repro.verify.shrink import shrink_program
from repro.verify.tunecheck import TuneMismatch, check_autotune

__all__ = ["Failure", "FuzzReport", "run_fuzz", "replay_case", "case_rng"]


@dataclass(frozen=True)
class Failure:
    case: int
    seed: int
    kind: str  # "transform" | "dependence" | "cache" | "locality" | "lint" | "autotune"
    transform: str
    detail: str
    reason: str  # legality slug that admitted the transform
    info: str
    program: Program | None
    shrunk: Program | None = None

    def repro_script(self) -> str:
        """A self-contained recipe reproducing this failure."""
        lines = [
            f"# verify failure: kind={self.kind} transform={self.transform} "
            f"detail={self.detail!r} admitted-by={self.reason}",
            f"# reproduce: PYTHONPATH=src python -c \"from repro.verify.runner "
            f"import replay_case; replay_case(seed={self.seed}, case={self.case})\"",
            f"# or: REPRO_SEED={self.seed} python -m repro verify --fuzz {self.case + 1}",
        ]
        source = self.shrunk if self.shrunk is not None else self.program
        if source is not None:
            label = "shrunken" if self.shrunk is not None else "failing"
            lines.append(f"# {label} program:")
            lines.extend(pretty_program(source).strip().splitlines())
        if self.info:
            lines.append(f"# {self.info}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    cases: int = 0
    seed: int = 0
    trials: int = 0
    accepted: int = 0
    rejected: int = 0
    over_conservative: Counter = field(default_factory=Counter)
    rejections_confirmed: int = 0
    dep_nests: int = 0
    dep_exact: int = 0
    cache_rounds: int = 0
    locality_rounds: int = 0
    locality_exact: int = 0
    lint_rounds: int = 0
    tune_rounds: int = 0
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        oc = sum(self.over_conservative.values())
        oc_detail = ", ".join(
            f"{name} {count}" for name, count in sorted(self.over_conservative.items())
        )
        lines = [
            f"verify: {self.cases} cases (seed {self.seed}), "
            f"{self.trials} transform trials "
            f"({self.accepted} accepted, {self.rejected} rejected), "
            f"{len(self.failures)} failures",
            f"  dependence cross-check: {self.dep_nests} nests, "
            f"{self.dep_exact} exact dependences covered",
            f"  cache cross-check: {self.cache_rounds} rounds, "
            "scalar and batched engines bit-identical",
            f"  locality cross-check: {self.locality_rounds} nests "
            f"({self.locality_exact} on the exact path), "
            "prediction consistent with the trace",
            f"  lint cross-check: {self.lint_rounds} nests, fix-its "
            "equivalent and miss-monotone",
            f"  autotune cross-check: {self.tune_rounds} nests, configs "
            "legality-approved and miss-monotone",
            f"  over-conservative rejections: {oc}"
            + (f" ({oc_detail})" if oc_detail else ""),
        ]
        return "\n".join(lines)


def case_rng(seed: int, case: int) -> random.Random:
    # Distinct, platform-stable streams per (seed, case).
    return random.Random(seed * 1_000_003 + case)


def _cache_rng(seed: int, case: int) -> random.Random:
    # Independent stream so the cache check replays without re-running
    # program generation first.
    return random.Random((seed * 1_000_003 + case) ^ 0xC0FFEE)


def _check_dependences(program: Program) -> list[tuple]:
    deps = region_dependences(program, include_inputs=True)
    exact = brute_force_dependences(
        program, program.param_env, include_inputs=True
    )
    return analysis_covers(deps, exact), len(exact)


def run_case(
    seed: int, case: int, config: GenConfig = DEFAULT_CONFIG
) -> tuple[Program, list[TrialResult], list[tuple]]:
    """Regenerate one case and run the program-level oracles."""
    rng = case_rng(seed, case)
    program = generate_program(rng, config, name=f"FUZZ{case}")
    missing, _count = _check_dependences(program)
    base = run_state(program)
    results = [
        check_trial(base, trial)
        for trial in transform_trials(program, CostModel())
    ]
    return program, results, missing


def _shrink_transform_failure(
    program: Program, transform: str
) -> Program:
    """Minimize a program that fails the equivalence oracle for ``transform``."""

    def still_fails(candidate: Program) -> bool:
        try:
            base = run_state(candidate)
            trials = [
                t
                for t in transform_trials(candidate, CostModel())
                if t.transform == transform
            ]
            return any(check_trial(base, t).is_failure for t in trials)
        except Exception:
            return False

    return shrink_program(program, still_fails)


def _shrink_dependence_failure(program: Program) -> Program:
    def still_fails(candidate: Program) -> bool:
        try:
            missing, _count = _check_dependences(candidate)
            return bool(missing)
        except Exception:
            return False

    return shrink_program(program, still_fails)


def run_fuzz(
    n: int,
    seed: int = 0,
    shrink: bool = False,
    config: GenConfig = DEFAULT_CONFIG,
    cache_stream_len: int = 150,
    max_failures: int = 10,
) -> FuzzReport:
    """Run ``n`` fuzz cases; returns the aggregated report."""
    obs = get_obs()
    report = FuzzReport(cases=n, seed=seed)
    model = CostModel()
    for case in range(n):
        if len(report.failures) >= max_failures:
            report.cases = case
            break
        rng = case_rng(seed, case)
        program = generate_program(rng, config, name=f"FUZZ{case}")
        obs.metrics.counter("verify.cases").inc()

        # 1. Brute-force dependence coverage.
        missing, exact_count = _check_dependences(program)
        report.dep_nests += 1
        report.dep_exact += exact_count
        if missing:
            failure = Failure(
                case,
                seed,
                "dependence",
                "dependence-analysis",
                f"{len(missing)} uncovered",
                "coverage",
                f"first uncovered: {missing[0]}",
                program,
                _shrink_dependence_failure(program) if shrink else None,
            )
            report.failures.append(failure)
            obs.metrics.counter("verify.failures").inc()
            obs.remark(
                "verify",
                "rejected",
                f"case {case}: analysis misses exact dependence {missing[0]}",
                reason="coverage",
                case=case,
                seed=seed,
            )

        # 2. Execution equivalence for every transform trial.
        base = run_state(program)
        for trial in transform_trials(program, model):
            result = check_trial(base, trial)
            report.trials += 1
            obs.metrics.counter("verify.trials").inc()
            if trial.accepted:
                report.accepted += 1
            else:
                report.rejected += 1
            if result.is_failure:
                info = (
                    f"crash: {result.crashed}"
                    if result.crashed
                    else f"arrays differ: {', '.join(result.differing)}"
                )
                failure = Failure(
                    case,
                    seed,
                    "transform",
                    trial.transform,
                    trial.detail,
                    trial.reason,
                    info,
                    program,
                    _shrink_transform_failure(program, trial.transform)
                    if shrink
                    else None,
                )
                report.failures.append(failure)
                obs.metrics.counter("verify.failures").inc()
                obs.metrics.counter(f"verify.failures.{trial.transform}").inc()
                obs.remark(
                    "verify",
                    "rejected",
                    f"case {case}: {trial.transform} {trial.detail} admitted "
                    f"but changed program output",
                    reason=trial.reason,
                    transform=trial.transform,
                    case=case,
                    seed=seed,
                )
            elif result.is_over_conservative:
                report.over_conservative[trial.transform] += 1
                obs.metrics.counter(
                    f"verify.over_conservative.{trial.transform}"
                ).inc()
            elif not trial.accepted:
                report.rejections_confirmed += 1
                obs.metrics.counter("verify.rejections_confirmed").inc()

        # 3. Cache-engine differential check.
        mismatch = run_cache_check(_cache_rng(seed, case), stream_len=cache_stream_len)
        report.cache_rounds += 1
        if mismatch is not None:
            report.failures.append(_cache_failure(case, seed, mismatch))
            obs.metrics.counter("verify.failures").inc()
            obs.remark(
                "verify",
                "rejected",
                f"case {case}: cache engines diverge ({mismatch.detail})",
                reason="engine-divergence",
                case=case,
                seed=seed,
            )

        # 4. Analytic locality prediction vs the exact trace.
        divergence = check_locality(program)
        report.locality_rounds += 1
        report.locality_exact += int(_locality_path(program) == "exact")
        if divergence is not None:
            report.failures.append(
                _locality_failure(case, seed, divergence, program)
            )
            obs.metrics.counter("verify.failures").inc()
            obs.remark(
                "verify",
                "rejected",
                f"case {case}: locality prediction diverges "
                f"({divergence.where}: {divergence.detail})",
                reason="locality-divergence",
                case=case,
                seed=seed,
            )

        # 5. Lint fix-its: legal, equivalent, and miss-monotone.
        lint_mismatch = check_lint(program)
        report.lint_rounds += 1
        if lint_mismatch is not None:
            report.failures.append(
                _lint_failure(case, seed, lint_mismatch, program)
            )
            obs.metrics.counter("verify.failures").inc()
            obs.remark(
                "verify",
                "rejected",
                f"case {case}: lint invariant violated "
                f"({lint_mismatch.where}: {lint_mismatch.detail})",
                reason="lint-invariant",
                case=case,
                seed=seed,
            )

        # 6. Autotuner: legality-approved, miss-monotone, equivalent.
        tune_mismatch = check_autotune(program)
        report.tune_rounds += 1
        if tune_mismatch is not None:
            report.failures.append(
                _tune_failure(case, seed, tune_mismatch, program)
            )
            obs.metrics.counter("verify.failures").inc()
            obs.remark(
                "verify",
                "rejected",
                f"case {case}: autotune invariant violated "
                f"({tune_mismatch.where}: {tune_mismatch.detail})",
                reason="autotune-invariant",
                case=case,
                seed=seed,
            )
    return report


def _locality_path(program: Program) -> str:
    from repro.locality.analytic import predict_locality
    from repro.verify.localitycheck import ORACLE_LINE

    return "exact" if predict_locality(program, line=ORACLE_LINE).exact else "model"


def _cache_failure(case: int, seed: int, mismatch: CacheMismatch) -> Failure:
    head = ", ".join(map(str, mismatch.addresses[:12]))
    return Failure(
        case,
        seed,
        "cache",
        f"cache-{mismatch.where}",
        f"config={mismatch.config}",
        "engine-divergence",
        f"{mismatch.detail}; stream head: [{head} ...]",
        None,
    )


def _locality_failure(
    case: int, seed: int, mismatch: LocalityMismatch, program: Program
) -> Failure:
    return Failure(
        case,
        seed,
        "locality",
        f"locality-{mismatch.where}",
        f"path={mismatch.path}",
        "locality-divergence",
        mismatch.detail,
        program,
    )


def _lint_failure(
    case: int, seed: int, mismatch: LintMismatch, program: Program
) -> Failure:
    return Failure(
        case,
        seed,
        "lint",
        f"lint-{mismatch.where}",
        "",
        "lint-invariant",
        mismatch.detail,
        program,
    )


def _tune_failure(
    case: int, seed: int, mismatch: TuneMismatch, program: Program
) -> Failure:
    return Failure(
        case,
        seed,
        "autotune",
        f"autotune-{mismatch.where}",
        "",
        "autotune-invariant",
        mismatch.detail,
        program,
    )


def replay_case(seed: int, case: int, config: GenConfig = DEFAULT_CONFIG) -> bool:
    """Re-run one case and print its outcome; returns True when clean."""
    program, results, missing = run_case(seed, case, config)
    print(pretty_program(program))
    ok = True
    if missing:
        ok = False
        print(f"dependence coverage FAILED: {len(missing)} uncovered, "
              f"first {missing[0]}")
    for result in results:
        trial = result.trial
        if result.is_failure:
            ok = False
            what = result.crashed or f"arrays differ: {', '.join(result.differing)}"
            print(
                f"FAIL {trial.transform} {trial.detail} "
                f"(admitted by {trial.reason}): {what}"
            )
    mismatch = run_cache_check(_cache_rng(seed, case))
    if mismatch is not None:
        ok = False
        print(f"cache engines diverge: {mismatch.detail}")
    divergence = check_locality(program)
    if divergence is not None:
        ok = False
        print(
            f"locality prediction diverges "
            f"({divergence.where}, {divergence.path} path): {divergence.detail}"
        )
    lint_mismatch = check_lint(program)
    if lint_mismatch is not None:
        ok = False
        print(
            f"lint invariant violated "
            f"({lint_mismatch.where}): {lint_mismatch.detail}"
        )
    tune_mismatch = check_autotune(program)
    if tune_mismatch is not None:
        ok = False
        print(
            f"autotune invariant violated "
            f"({tune_mismatch.where}): {tune_mismatch.detail}"
        )
    if ok:
        print(f"case {case} (seed {seed}): all oracles clean "
              f"({len(results)} trials)")
    return ok
