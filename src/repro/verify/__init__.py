"""Differential verification subsystem.

Three oracle layers, each differential against ground truth that is
independent of the code under test:

* :mod:`repro.verify.depforce` — brute-force dependence enumeration;
  the analytic ZIV/SIV/MIV vectors must *cover* the exact set.
* :mod:`repro.verify.oracles` — execution equivalence; every transform
  the legality layer admits must leave final array state bit-identical
  under the interpreter.  Rejected transforms are force-applied where
  mechanically possible to measure over-conservatism.
* :mod:`repro.verify.cachecheck` — batched (`access_block`) vs scalar
  (`access`) cache engines on random streams and geometries.

:mod:`repro.verify.gennest` generates the random programs,
:mod:`repro.verify.shrink` minimizes failures, and
:mod:`repro.verify.runner` drives it all behind
``python -m repro verify --fuzz N --seed S [--shrink]``.
"""

from repro.verify.depforce import (
    analysis_covers,
    brute_force_dependences,
    enumerate_accesses,
    vector_covers,
)
from repro.verify.gennest import DEFAULT_CONFIG, GenConfig, generate_program
from repro.verify.oracles import Trial, TrialResult, check_trial, run_state, transform_trials
from repro.verify.runner import Failure, FuzzReport, replay_case, run_fuzz
from repro.verify.shrink import program_in_bounds, shrink_program

__all__ = [
    "analysis_covers",
    "brute_force_dependences",
    "enumerate_accesses",
    "vector_covers",
    "GenConfig",
    "DEFAULT_CONFIG",
    "generate_program",
    "Trial",
    "TrialResult",
    "check_trial",
    "run_state",
    "transform_trials",
    "Failure",
    "FuzzReport",
    "replay_case",
    "run_fuzz",
    "program_in_bounds",
    "shrink_program",
]
