"""Differential check: batched vs scalar cache simulation.

PR 3's ``access_block`` fast paths (direct-mapped replay, two-way closed
form, rounds replay for higher associativity) must be *bit-identical* to
the scalar ``access`` reference on any stream.  This module fuzzes both
:class:`~repro.cache.cache.SetAssocCache` and
:class:`~repro.cache.hierarchy.Hierarchy` on random geometries and
random address streams (sequential runs, strides, re-use windows,
line-straddling sizes) and compares per-access outcomes and final
statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cache.cache import CacheConfig, SetAssocCache
from repro.cache.hierarchy import Hierarchy, tlb_config

__all__ = [
    "CacheMismatch",
    "random_config",
    "random_stream",
    "check_cache_pair",
    "check_hierarchy_pair",
    "run_cache_check",
]


@dataclass(frozen=True)
class CacheMismatch:
    """First divergence between the scalar and batched engines."""

    where: str  # "cache" | "hierarchy"
    config: tuple
    index: int | None
    detail: str
    addresses: tuple[int, ...]
    sizes: tuple[int, ...]


def random_config(rng: random.Random, name: str = "L1") -> CacheConfig:
    line = 2 ** rng.randint(2, 6)
    assoc = rng.choice((1, 1, 2, 2, 3, 4, 8))
    sets = rng.choice((1, 2, 4, 8, 16))
    return CacheConfig(name, size=line * assoc * sets, assoc=assoc, line=line)


def random_stream(
    rng: random.Random, n: int
) -> tuple[list[int], list[int]]:
    """A mixed access stream: strided runs, reuse windows, random singles."""
    addresses: list[int] = []
    sizes: list[int] = []
    space = rng.choice((256, 1024, 4096))
    while len(addresses) < n:
        r = rng.random()
        if r < 0.45:
            start = rng.randrange(space)
            stride = rng.choice((1, 4, 8, 8, 16, 32, -8))
            size = rng.choice((1, 4, 8))
            for k in range(rng.randint(1, 12)):
                addresses.append(max(0, start + k * stride))
                sizes.append(size)
        elif r < 0.65 and addresses:
            window = rng.randint(1, min(8, len(addresses)))
            addresses.extend(addresses[-window:])
            sizes.extend(sizes[-window:])
        else:
            addresses.append(rng.randrange(space))
            # Sizes up to 2 lines so straddling accesses get fuzzed too.
            sizes.append(rng.choice((1, 2, 8, 16, 24)))
    return addresses[:n], sizes[:n]


def _config_key(config: CacheConfig) -> tuple:
    return (config.name, config.size, config.assoc, config.line)


def check_cache_pair(
    config: CacheConfig, addresses: list[int], sizes: list[int]
) -> CacheMismatch | None:
    """Replay one stream through scalar and batched engines; compare."""
    scalar = SetAssocCache(config)
    hits = []
    colds = []
    for addr, size in zip(addresses, sizes):
        before = scalar.stats.cold_misses
        hits.append(scalar.access(addr, size))
        colds.append(scalar.stats.cold_misses - before)

    batched = SetAssocCache(config)
    block = batched.access_block(addresses, sizes)

    for i, (hit, cold) in enumerate(zip(hits, colds)):
        if bool(block.hits[i]) != hit or int(block.cold[i]) != cold:
            return CacheMismatch(
                "cache",
                _config_key(config),
                i,
                f"access {i}: scalar (hit={hit}, cold={cold}) vs "
                f"batched (hit={bool(block.hits[i])}, cold={int(block.cold[i])})",
                tuple(addresses),
                tuple(sizes),
            )
    if scalar.stats != batched.stats:
        return CacheMismatch(
            "cache",
            _config_key(config),
            None,
            f"final stats differ: {scalar.stats} vs {batched.stats}",
            tuple(addresses),
            tuple(sizes),
        )
    return None


def check_hierarchy_pair(
    configs: list[CacheConfig],
    tlb: CacheConfig | None,
    addresses: list[int],
    sizes: list[int],
) -> CacheMismatch | None:
    scalar = Hierarchy(configs, tlb=tlb)
    levels = [scalar.access(addr, size) for addr, size in zip(addresses, sizes)]

    batched = Hierarchy(configs, tlb=tlb)
    level_of = batched.access_block(addresses, sizes)

    key = tuple(_config_key(c) for c in configs)
    for i, level in enumerate(levels):
        if int(level_of[i]) != level:
            return CacheMismatch(
                "hierarchy",
                key,
                i,
                f"access {i}: scalar level {level} vs batched {int(level_of[i])}",
                tuple(addresses),
                tuple(sizes),
            )
    a, b = scalar.result, batched.result
    if a.levels != b.levels or a.tlb != b.tlb:
        return CacheMismatch(
            "hierarchy",
            key,
            None,
            f"final stats differ: {a} vs {b}",
            tuple(addresses),
            tuple(sizes),
        )
    return None


def run_cache_check(rng: random.Random, stream_len: int = 200) -> CacheMismatch | None:
    """One fuzz round: a single-cache stream and a hierarchy stream."""
    config = random_config(rng)
    addresses, sizes = random_stream(rng, stream_len)
    mismatch = check_cache_pair(config, addresses, sizes)
    if mismatch is not None:
        return mismatch

    l1 = random_config(rng, "L1")
    configs = [l1]
    if rng.random() < 0.5:
        line2 = max(l1.line, 2 ** rng.randint(4, 7))
        assoc2 = rng.choice((2, 4))
        sets2 = rng.choice((8, 16, 32))
        configs.append(CacheConfig("L2", line2 * assoc2 * sets2, assoc2, line2))
    tlb = None
    if rng.random() < 0.4:
        tlb = tlb_config(entries=rng.choice((2, 4, 8)), page=rng.choice((64, 256)))
    addresses, sizes = random_stream(rng, stream_len)
    return check_hierarchy_pair(configs, tlb, addresses, sizes)
