"""Fuzz oracle for the lint engine: fix-its are legal and never regress.

For a generated program the oracle asserts the engine's two public
invariants, independently of the engine's own verification pass:

* every *attached* fix-it (the engine only attaches verified ones) is
  re-checked from scratch — the fixed program must produce bit-identical
  final state at a shrunken problem size, and its predicted miss count
  must not exceed the original's (the engine withholds regressions);
* the ``--fix`` driver is monotone end to end — applying every fix-it in
  payoff order yields a program that is still execution-equivalent to
  the original and whose predicted miss count is no worse.

A violation is returned as a :class:`LintMismatch` for the fuzz runner
to report; ``None`` means the case is clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.ir.nodes import Program

__all__ = ["LintMismatch", "check_lint", "ORACLE_LINE", "ORACLE_CAPACITY"]

#: Cache geometry the oracle scores with (small capacity so miss ratios
#: are not saturated at 0 on fuzz-sized programs).
ORACLE_LINE = 128
ORACLE_CAPACITY = 64

#: Slack when comparing predicted miss counts (they are exact integers,
#: but keep a tolerance so a future fractional predictor stays safe).
_MISS_EPS = 1e-9


@dataclass(frozen=True)
class LintMismatch:
    where: str  # "fixit-state" | "fixit-misses" | "fixit-unverified" | "fix-state" | "fix-misses" | "crash"
    detail: str


def _state_equal(original: Program, candidate: Program) -> str | None:
    """Compare shrunken final states on shared arrays; None when equal."""
    from repro.lint.verifyfix import _shrunk
    from repro.verify.oracles import run_state

    base = run_state(_shrunk(original))
    state = run_state(_shrunk(candidate))
    differing = sorted(
        name for name in set(base) & set(state) if base[name] != state[name]
    )
    if differing:
        return ", ".join(differing)
    return None


def check_lint(program: Program) -> LintMismatch | None:
    """Run the lint engine over ``program`` and re-check its promises."""
    from repro.lint import apply_fixes, lint_program
    from repro.lint.verifyfix import predicted_misses

    try:
        result = lint_program(
            program, line=ORACLE_LINE, capacity=ORACLE_CAPACITY
        )
        base_misses, _ = predicted_misses(program, ORACLE_LINE, ORACLE_CAPACITY)
        for diag in result.diagnostics:
            fixit = diag.fixit
            if fixit is None:
                continue
            if not fixit.verified:
                # Engine policy: unverified fix-its ride only on
                # error-severity diagnostics (the escalation path).
                if diag.severity != "error":
                    return LintMismatch(
                        "fixit-unverified",
                        f"{diag.check_id}: unverified fix-it attached to a "
                        f"{diag.severity}-severity diagnostic",
                    )
                continue
            differing = _state_equal(program, fixit.program)
            if differing:
                return LintMismatch(
                    "fixit-state",
                    f"{diag.check_id} ({fixit.transform}): arrays differ: "
                    f"{differing}",
                )
            misses, _ = predicted_misses(
                fixit.program, ORACLE_LINE, ORACLE_CAPACITY
            )
            if misses > base_misses + _MISS_EPS:
                return LintMismatch(
                    "fixit-misses",
                    f"{diag.check_id} ({fixit.transform}): predicted misses "
                    f"{base_misses} -> {misses} (regression)",
                )

        outcome = apply_fixes(
            program, line=ORACLE_LINE, capacity=ORACLE_CAPACITY
        )
        if outcome.applied:
            differing = _state_equal(program, outcome.program)
            if differing:
                return LintMismatch(
                    "fix-state",
                    f"after {len(outcome.applied)} fix-it(s): arrays differ: "
                    f"{differing}",
                )
            final_misses, _ = predicted_misses(
                outcome.program, ORACLE_LINE, ORACLE_CAPACITY
            )
            if final_misses > base_misses + _MISS_EPS:
                return LintMismatch(
                    "fix-misses",
                    f"after {len(outcome.applied)} fix-it(s): predicted "
                    f"misses {base_misses} -> {final_misses} (regression)",
                )
    except (ReproError, ArithmeticError, ValueError, IndexError, KeyError) as exc:
        return LintMismatch("crash", f"{type(exc).__name__}: {exc}")
    return None
