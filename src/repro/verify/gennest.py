"""Seeded random generator of small affine loop-nest programs.

Produces concrete (parameter-free) programs that exercise the tricky
corners of the pipeline: imperfect nesting, negative strides, non-unit
strides, triangular bounds, coupled subscripts, constant subscripts,
scalar temporaries, and self-referencing recurrences.  Every generated
program is safe to interpret:

* loop trip counts are tiny (a handful of iterations per level);
* array subscripts are shifted so every access stays in bounds — the
  generator tracks the value range of each affine subscript by interval
  arithmetic over the loop value ranges and sizes the declarations to
  the maximum touched location;
* right-hand sides are *linear*: sums/differences of references,
  optionally scaled by a small constant, plus loop variables and
  constants.  No ref*ref products, divisions, or intrinsics, so
  multiplicative recurrences cannot blow values up over the few hundred
  statement instances a nest executes.

Linearity matters for the execution-equivalence oracle: a legal
(dependence-preserving) transformation reorders whole statement
instances but never the operations *within* one instance, so the final
array state is bit-identical — even in floating point — as long as the
values stay deterministic.

Determinism: everything derives from the caller-supplied
``random.Random``, so a (seed, case index) pair pins a program exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.affine import Affine
from repro.ir.expr import Bin, Const, Expr, Ref, Var
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program

__all__ = ["GenConfig", "generate_program", "DEFAULT_CONFIG"]

_LOOP_VARS = ("I", "J", "K", "L")
_ARRAY_NAMES = ("A", "B", "C")
_SCALAR_NAME = "S"


@dataclass(frozen=True)
class GenConfig:
    """Knobs for the shape distribution of generated nests."""

    max_depth: int = 3
    max_rank: int = 2
    max_trip: int = 6
    max_arrays: int = 3
    max_rhs_terms: int = 3
    max_coeff: int = 2
    p_second_nest: float = 0.35
    p_imperfect: float = 0.35
    p_negative_step: float = 0.15
    p_step2: float = 0.10
    p_triangular: float = 0.20
    p_coupled: float = 0.15
    p_scalar: float = 0.15
    p_const_sub: float = 0.10


DEFAULT_CONFIG = GenConfig()


def _affine_range(form: Affine, ranges: dict[str, tuple[int, int]]) -> tuple[int, int]:
    """Interval of ``form`` when each variable spans its recorded range."""
    lo = hi = form.const
    for name, coeff in form.terms:
        vlo, vhi = ranges[name]
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    return lo, hi


class _Gen:
    def __init__(self, rng: random.Random, cfg: GenConfig) -> None:
        self.rng = rng
        self.cfg = cfg
        n_arrays = rng.randint(2, max(2, cfg.max_arrays))
        self.arrays: dict[str, list[int]] = {}
        self.ranks: dict[str, int] = {}
        for name in _ARRAY_NAMES[:n_arrays]:
            rank = rng.randint(1, cfg.max_rank)
            self.ranks[name] = rank
            self.arrays[name] = [1] * rank
        self.uses_scalar = False

    # ------------------------------------------------------------------
    # Loop headers
    # ------------------------------------------------------------------
    def gen_loop(
        self, var: str, depth_left: int, ranges: dict[str, tuple[int, int]]
    ) -> Loop:
        rng, cfg = self.rng, self.cfg
        trip = rng.randint(2, cfg.max_trip)
        lb_const = rng.randint(1, 2)
        lb: Affine
        ub: Affine
        step = 1
        r = rng.random()
        outer_candidates = [
            v for v, (vlo, vhi) in ranges.items() if vlo <= vhi
        ]
        if r < cfg.p_negative_step:
            # DO var = hi, lo, -1
            step = -1
            hi_const = lb_const + trip - 1
            lb = Affine.constant(hi_const)
            ub = Affine.constant(lb_const)
            vrange = (lb_const, hi_const)
        elif r < cfg.p_negative_step + cfg.p_step2:
            step = 2
            lb = Affine.constant(lb_const)
            ub = Affine.constant(lb_const + 2 * (trip - 1))
            vrange = (lb_const, lb_const + 2 * (trip - 1))
        elif r < cfg.p_negative_step + cfg.p_step2 + cfg.p_triangular and outer_candidates:
            outer = rng.choice(outer_candidates)
            olo, ohi = ranges[outer]
            if rng.random() < 0.5:
                # DO var = outer+d, HI  (lower triangular)
                d = rng.choice((-1, 0))
                hi_const = ohi + rng.randint(0, 2)
                lb = Affine.var(outer) + d
                ub = Affine.constant(hi_const)
                vrange = (olo + d, hi_const)
            else:
                # DO var = LO, outer+d  (upper triangular)
                d = rng.choice((0, 1))
                lb = Affine.constant(min(lb_const, olo))
                ub = Affine.var(outer) + d
                vrange = (lb.const, ohi + d)
        else:
            lb = Affine.constant(lb_const)
            ub = Affine.constant(lb_const + trip - 1)
            vrange = (lb_const, lb_const + trip - 1)

        inner_ranges = dict(ranges)
        inner_ranges[var] = vrange
        body = self.gen_body(var, depth_left - 1, inner_ranges)
        return Loop(var, lb, ub, step, tuple(body))

    def gen_body(
        self, var: str, depth_left: int, ranges: dict[str, tuple[int, int]]
    ) -> list["Loop | Assign"]:
        rng, cfg = self.rng, self.cfg
        depth = len(ranges)
        if depth_left <= 0 or depth >= len(_LOOP_VARS):
            n = rng.randint(1, 2)
            return [self.gen_assign(ranges) for _ in range(n)]
        inner = self.gen_loop(_LOOP_VARS[depth], depth_left, ranges)
        body: list[Loop | Assign] = [inner]
        if rng.random() < cfg.p_imperfect:
            stmt = self.gen_assign(ranges)
            if rng.random() < 0.5:
                body.insert(0, stmt)
            else:
                body.append(stmt)
        return body

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def gen_subscript(self, ranges: dict[str, tuple[int, int]]) -> Affine:
        rng, cfg = self.rng, self.cfg
        in_scope = list(ranges)
        form = Affine.constant(rng.randint(-2, 2))
        if in_scope and rng.random() >= cfg.p_const_sub:
            coeffs = [1] * 6 + [-1, 2][: cfg.max_coeff]
            v = rng.choice(in_scope)
            form = form + Affine.var(v, rng.choice(coeffs))
            if len(in_scope) > 1 and rng.random() < cfg.p_coupled:
                other = rng.choice([w for w in in_scope if w != v])
                form = form + Affine.var(other, rng.choice((1, -1)))
        # Shift so the minimum touched location is >= 1.
        lo, _ = _affine_range(form, ranges)
        if lo < 1:
            form = form + (1 - lo)
        return form

    def gen_ref(self, ranges: dict[str, tuple[int, int]]) -> Ref:
        rng = self.rng
        if rng.random() < self.cfg.p_scalar:
            self.uses_scalar = True
            return Ref(_SCALAR_NAME, ())
        name = rng.choice(list(self.arrays))
        subs = tuple(self.gen_subscript(ranges) for _ in range(self.ranks[name]))
        for dim, sub in enumerate(subs):
            _, hi = _affine_range(sub, ranges)
            self.arrays[name][dim] = max(self.arrays[name][dim], hi)
        return Ref(name, subs)

    def gen_term(self, ranges: dict[str, tuple[int, int]]) -> Expr:
        rng = self.rng
        r = rng.random()
        if r < 0.70:
            term: Expr = self.gen_ref(ranges)
            if rng.random() < 0.25:
                term = Bin("*", Const(rng.choice((2, 3))), term)
            return term
        if r < 0.85 and ranges:
            return Var(rng.choice(list(ranges)))
        return Const(rng.randint(1, 3))

    def gen_assign(self, ranges: dict[str, tuple[int, int]]) -> Assign:
        rng, cfg = self.rng, self.cfg
        lhs = self.gen_ref(ranges)
        rhs = self.gen_term(ranges)
        for _ in range(rng.randint(0, cfg.max_rhs_terms - 1)):
            rhs = Bin(rng.choice("+-"), rhs, self.gen_term(ranges))
        return Assign(lhs, rhs)

    # ------------------------------------------------------------------
    # Whole programs
    # ------------------------------------------------------------------
    def gen_program(self, name: str) -> Program:
        rng, cfg = self.rng, self.cfg
        body: list[Loop | Assign] = []
        n_nests = 1 + (rng.random() < cfg.p_second_nest)
        for _ in range(n_nests):
            depth = rng.randint(1, cfg.max_depth)
            body.append(self.gen_loop(_LOOP_VARS[0], depth, {}))
        decls = [
            ArrayDecl.make(arr, [max(1, e) for e in extents])
            for arr, extents in self.arrays.items()
            if _array_used(body, arr)
        ]
        if self.uses_scalar:
            decls.append(ArrayDecl.make(_SCALAR_NAME, []))
        return Program.make(name, body, decls)


def _array_used(body: list, name: str) -> bool:
    def in_node(node) -> bool:
        if isinstance(node, Assign):
            return any(ref.array == name for ref in node.refs)
        return any(in_node(child) for child in node.body)

    return any(in_node(node) for node in body)


def generate_program(
    rng: random.Random,
    config: GenConfig = DEFAULT_CONFIG,
    name: str = "FUZZ",
) -> Program:
    """Generate one random concrete program from ``rng``."""
    return _Gen(rng, config).gen_program(name)
