"""Brute-force dependence oracle (ground truth for the analytic tests).

Enumerates every dynamic access of a (small, concrete) program and derives
the exact set of dependences by inspecting coincident memory locations.
The analysis under test must *cover* everything the oracle finds
(conservativeness / soundness); it may report more (imprecision).

Promoted out of ``tests/oracle.py`` so the differential-testing subsystem
(:mod:`repro.verify`) can run it against randomly generated nests, not
just hand-written ones.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import enclosing_loops

__all__ = [
    "Access",
    "enumerate_accesses",
    "brute_force_dependences",
    "vector_covers",
    "analysis_covers",
]


@dataclass(frozen=True)
class Access:
    time: int
    sid: int
    slot: int
    is_write: bool
    iters: tuple[tuple[str, int], ...]  # loop var -> index *value*


def _ordered_slots(node: Assign) -> list[tuple[int, bool]]:
    """Slots of ``node.refs`` in dynamic firing order: reads, then the write.

    The write slot is located by consulting ``node.lhs`` explicitly — it is
    wherever the lhs object sits in ``refs`` — rather than assuming it
    occupies slot 0.  (``refs`` happens to put writes first today, but the
    oracle must not depend on that layout: a read of the same location as
    the lhs, e.g. ``A(I) = A(I) + 1``, is only told apart by identity.)
    """
    refs = node.refs
    lhs_slot = next(
        (slot for slot, ref in enumerate(refs) if ref is node.lhs), 0
    )
    order = [(slot, False) for slot in range(len(refs)) if slot != lhs_slot]
    order.append((lhs_slot, True))
    return order


def enumerate_accesses(root: "Program | Loop", env: dict[str, int]):
    """Yield every dynamic access in execution order."""
    accesses: list[tuple[str, tuple[int, ...], Access]] = []
    clock = 0

    def run(node, bindings: dict[str, int], iters: tuple[tuple[str, int], ...]):
        nonlocal clock
        if isinstance(node, Assign):
            scope = {**env, **bindings}
            refs = node.refs
            # Reads fire before the write within a statement instance.
            for slot, is_write in _ordered_slots(node):
                ref = refs[slot]
                location = tuple(s.evaluate(scope) for s in ref.subs)
                accesses.append(
                    (
                        ref.array,
                        location,
                        Access(clock, node.sid, slot, is_write, iters),
                    )
                )
                clock += 1
            return
        for value in node.iter_values({**env, **bindings}):
            inner = dict(bindings)
            inner[node.var] = value
            run_body(node.body, inner, iters + ((node.var, value),))

    def run_body(body, bindings, iters):
        for child in body:
            run(child, bindings, iters)

    run_body(root.body, {}, ())
    return accesses


def brute_force_dependences(
    root: "Program | Loop", env: dict[str, int], include_inputs: bool = False
) -> set[tuple]:
    """Exact dependences as (src_sid, src_slot, snk_sid, snk_slot, distvec).

    ``distvec`` is the tuple of index-value differences divided by the
    loop step (i.e. iteration distances in value space) over the loops
    common to the two statements, outermost first.
    """
    chains = enclosing_loops(root)
    by_location: dict[tuple, list[Access]] = defaultdict(list)
    for array, location, access in enumerate_accesses(root, env):
        by_location[(array, location)].append(access)

    found: set[tuple] = set()
    for accesses in by_location.values():
        accesses.sort(key=lambda a: a.time)
        for i, src in enumerate(accesses):
            for snk in accesses[i + 1 :]:
                if not (src.is_write or snk.is_write) and not include_inputs:
                    continue
                chain_a, chain_b = chains[src.sid], chains[snk.sid]
                # Common loops are the *same loop objects*, matching the
                # analysis driver; sibling nests that reuse a variable
                # name share no loops (their dependences are depth-0
                # orderings with an empty distance vector).
                k = 0
                while k < len(chain_a) and k < len(chain_b) and chain_a[k] is chain_b[k]:
                    k += 1
                src_iters = dict(src.iters)
                snk_iters = dict(snk.iters)
                dist = tuple(
                    (snk_iters[loop.var] - src_iters[loop.var]) // loop.step
                    for loop in chain_a[:k]
                )
                found.add((src.sid, src.slot, snk.sid, snk.slot, dist))
    return found


def vector_covers(vector, dist: tuple[int, ...]) -> bool:
    """Does a hybrid vector's pattern admit this exact distance vector?"""
    if len(vector) != len(dist):
        return False
    for comp, d in zip(vector.components, dist):
        if isinstance(comp, int):
            if comp != d:
                return False
        elif comp == "<":
            if d <= 0:
                return False
        elif comp == ">":
            if d >= 0:
                return False
        elif comp == "=":
            if d != 0:
                return False
        # '*' covers everything
    return True


def analysis_covers(deps, exact: set[tuple]) -> list[tuple]:
    """Return the exact dependences NOT covered by the analysis (should be [])."""
    missing = []
    for src_sid, src_slot, snk_sid, snk_slot, dist in exact:
        covered = any(
            d.source.sid == src_sid
            and d.source.slot == src_slot
            and d.sink.sid == snk_sid
            and d.sink.slot == snk_slot
            and vector_covers(d.vector, dist)
            for d in deps
        )
        if not covered:
            missing.append((src_sid, src_slot, snk_sid, snk_slot, dist))
    return missing
