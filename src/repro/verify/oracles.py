"""Execution-equivalence oracles for every transformation.

The ground truth is the interpreter: a transformation admitted by the
legality layer must leave the final array state *bit-identical*, because
a dependence-preserving reordering moves whole statement instances
around but never changes the operations (or their order) within one
instance — every read still sees the same writes, so even floating-point
results are reproduced exactly.

For each generated program, :func:`transform_trials` enumerates concrete
applications of every transform in the pipeline — permutation, reversal,
fusion, distribution, tiling, unroll-and-jam, scalar replacement, and
the full ``compound`` driver — recording for each the legality layer's
verdict and the transformed program.  Rejected transforms are *forced*
through the mechanical rewriter wherever that is possible, so the
checker can also measure over-conservatism: a rejected transform whose
output matches is a missed opportunity (counted, never a failure).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ReproError, TransformError
from repro.exec.interp import Interpreter
from repro.ir.nodes import Loop, Program
from repro.ir.visit import iter_loops
from repro.model.loopcost import CostModel
from repro.transforms import legality
from repro.transforms.compound import compound
from repro.transforms.distribution import distribute_nest
from repro.transforms.fusion import compatible_depth, fuse_all, fuse_pair, fusion_preventing
from repro.transforms.permute import apply_order
from repro.transforms.scalar_replace import scalar_replace_program
from repro.transforms.tiling import tile_nest
from repro.transforms.unroll_jam import unroll_and_jam

__all__ = ["Trial", "TrialResult", "transform_trials", "check_trial", "run_state"]

#: Permutation trials are enumerated exhaustively up to this chain depth.
_MAX_PERM_DEPTH = 3


@dataclass(frozen=True)
class Trial:
    """One concrete transform application on one program.

    ``accepted`` is the legality layer's verdict; ``reason`` the slug of
    the decision that admitted (or rejected) it.  ``program`` is the
    transformed program — built even for rejected transforms when the
    mechanical rewriter allows, so over-conservatism can be measured.
    ``compare`` optionally restricts the equivalence check to the named
    arrays (scalar replacement introduces fresh temporaries).
    """

    transform: str
    detail: str
    accepted: bool
    reason: str
    program: Program
    compare: tuple[str, ...] | None = None


@dataclass(frozen=True)
class TrialResult:
    trial: Trial
    equal: bool
    differing: tuple[str, ...] = ()
    crashed: str | None = None

    @property
    def is_failure(self) -> bool:
        """An admitted transform that changed observable behaviour."""
        return self.trial.accepted and (not self.equal or self.crashed is not None)

    @property
    def is_over_conservative(self) -> bool:
        """A rejected transform that would have been behaviour-preserving."""
        return (not self.trial.accepted) and self.equal and self.crashed is None


def run_state(program: Program) -> dict[str, bytes]:
    """Final array state, one opaque byte-string per declared array.

    ``check_values=False``: generated programs are linear so values stay
    finite in practice, but equivalence must be judged on raw bits either
    way (NaN/Inf propagation is deterministic).
    """
    arrays = Interpreter(program, check_values=False).run()
    return {name: arr.tobytes() for name, arr in arrays.items()}


def check_trial(base: dict[str, bytes], trial: Trial) -> TrialResult:
    """Compare a trial's final state against the untransformed state."""
    try:
        state = run_state(trial.program)
    except (ReproError, ArithmeticError, ValueError, IndexError, KeyError) as exc:
        return TrialResult(trial, equal=False, crashed=f"{type(exc).__name__}: {exc}")
    names = trial.compare if trial.compare is not None else tuple(base)
    differing = tuple(
        name for name in names if state.get(name) != base.get(name)
    )
    return TrialResult(trial, equal=not differing, differing=differing)


# ----------------------------------------------------------------------
# Trial enumeration
# ----------------------------------------------------------------------
def _replace_top(program: Program, index: int, nodes) -> Program:
    body = list(program.body)
    body[index : index + 1] = list(nodes)
    return program.with_body(body)


def transform_trials(
    program: Program, model: CostModel | None = None
) -> list[Trial]:
    """Enumerate transform trials for one program (deterministic order)."""
    model = model or CostModel()
    trials: list[Trial] = []
    trials.extend(_permutation_trials(program))
    trials.extend(_reversal_trials(program))
    trials.extend(_fusion_trials(program))
    trials.extend(_fuse_all_trials(program))
    trials.extend(_distribution_trials(program, model))
    trials.extend(_tiling_trials(program))
    trials.extend(_unroll_jam_trials(program))
    trials.extend(_scalar_replace_trials(program))
    trials.extend(_compound_trials(program, model))
    return trials


def _top_chains(program: Program):
    for index, item in enumerate(program.body):
        if isinstance(item, Loop):
            yield index, item, item.perfect_nest_loops()


def _permutation_trials(program: Program) -> list[Trial]:
    trials = []
    for index, item, chain in _top_chains(program):
        if not 2 <= len(chain) <= _MAX_PERM_DEPTH:
            continue
        original = tuple(loop.var for loop in chain)
        vectors = legality.constraining_vectors(item)
        index_of = {var: i for i, var in enumerate(original)}
        for order in itertools.permutations(original):
            if order == original:
                continue
            legal = legality.order_is_legal(
                vectors, [index_of[v] for v in order]
            )
            try:
                nest = apply_order(chain, order, set())
            except TransformError:
                continue  # bounds not derivable: mechanically inapplicable
            trials.append(
                Trial(
                    "permute",
                    ".".join(order),
                    accepted=legal,
                    reason="order-legal" if legal else "order-illegal",
                    program=_replace_top(program, index, [nest]),
                )
            )
    return trials


def _reversal_trials(program: Program) -> list[Trial]:
    trials = []
    for index, item, chain in _top_chains(program):
        original = tuple(loop.var for loop in chain)
        vectors = legality.constraining_vectors(item)
        identity = list(range(len(original)))
        for pos, var in enumerate(original):
            legal = legality.order_is_legal(
                vectors, identity, frozenset({pos})
            )
            try:
                nest = apply_order(chain, original, {var})
            except TransformError:
                continue  # coupled nest: reversal mechanically inapplicable
            trials.append(
                Trial(
                    "reversal",
                    var,
                    accepted=legal,
                    reason="reversal-legal" if legal else "reversal-illegal",
                    program=_replace_top(program, index, [nest]),
                )
            )
    return trials


def _fusion_trials(program: Program) -> list[Trial]:
    trials = []
    body = program.body
    for i in range(len(body) - 1):
        a, b = body[i], body[i + 1]
        if not (isinstance(a, Loop) and isinstance(b, Loop)):
            continue
        depth = compatible_depth(a, b)
        if depth == 0:
            continue
        preventing = fusion_preventing(a, b, depth)
        fused = fuse_pair(a, b, depth)
        new_body = list(body)
        new_body[i : i + 2] = [fused]
        trials.append(
            Trial(
                "fusion",
                f"{a.var}+{b.var}@{depth}",
                accepted=not preventing,
                reason="fusion-preventing" if preventing else "fusion-safe",
                program=program.with_body(new_body),
            )
        )
    return trials


def _fuse_all_trials(program: Program) -> list[Trial]:
    trials = []
    for index, item, _chain in _top_chains(program):
        if item.is_perfect_nest():
            continue
        fused = fuse_all(item)
        if fused is None:
            continue  # rejected and not mechanically forceable
        trials.append(
            Trial(
                "fuse-all",
                item.var,
                accepted=True,
                reason="fuse-all-legal",
                program=_replace_top(program, index, [fused]),
            )
        )
    return trials


def _distribution_trials(program: Program, model: CostModel) -> list[Trial]:
    trials = []
    used = {loop.var for loop in iter_loops(program)}
    for index, item, _chain in _top_chains(program):
        if item.depth < 2:
            continue
        outcome = distribute_nest(item, model, used_names=set(used))
        if outcome is None:
            continue
        trials.append(
            Trial(
                "distribution",
                f"{item.var}@{outcome.level}",
                accepted=True,
                reason="scc-partition",
                program=_replace_top(program, index, outcome.nodes),
            )
        )
    return trials


def _divisor(trip: int) -> int | None:
    for d in (2, 3, 4):
        if 1 < d < trip and trip % d == 0:
            return d
    return None


def _tiling_trials(program: Program) -> list[Trial]:
    trials = []
    for index, item, chain in _top_chains(program):
        tiles: dict[str, int] = {}
        for loop in chain:
            span = loop.ub - loop.lb
            if loop.step != 1 or not span.is_constant():
                continue
            tile = _divisor(span.const + 1)
            if tile is not None:
                tiles[loop.var] = tile
        if not tiles:
            continue
        try:
            result = tile_nest(item, tiles)
            accepted, reason = True, "fully-permutable"
        except TransformError:
            # Rejected by the legality check; force the mechanics.
            try:
                result = tile_nest(item, tiles, check=False)
            except TransformError:
                continue
            accepted, reason = False, "band-not-permutable"
        trials.append(
            Trial(
                "tiling",
                ",".join(f"{v}/{t}" for v, t in tiles.items()),
                accepted=accepted,
                reason=reason,
                program=_replace_top(program, index, [result.loop]),
            )
        )
    return trials


def _unroll_jam_trials(program: Program) -> list[Trial]:
    trials = []
    for index, item, chain in _top_chains(program):
        if len(chain) < 2 or not item.is_perfect_nest():
            continue
        span = item.ub - item.lb
        if item.step != 1 or not span.is_constant():
            continue
        factor = _divisor(span.const + 1)
        if factor is None:
            continue
        try:
            jammed = unroll_and_jam(item, factor)
            accepted, reason = True, "jam-legal"
        except TransformError:
            try:
                jammed = unroll_and_jam(item, factor, check=False)
            except TransformError:
                continue
            accepted, reason = False, "jam-illegal"
        trials.append(
            Trial(
                "unroll-jam",
                f"{item.var}x{factor}",
                accepted=accepted,
                reason=reason,
                # Jammed copies are new statements: renumber program-wide.
                program=_replace_top(program, index, [jammed]).renumbered(),
            )
        )
    return trials


def _scalar_replace_trials(program: Program) -> list[Trial]:
    result = scalar_replace_program(program)
    if not result.replaced:
        return []
    return [
        Trial(
            "scalar-replace",
            f"{result.replaced} refs",
            accepted=True,
            reason="promotable",
            program=result.program,
            compare=tuple(decl.name for decl in program.arrays),
        )
    ]


def _compound_trials(program: Program, model: CostModel) -> list[Trial]:
    outcome = compound(program, model)
    return [
        Trial(
            "compound",
            "driver",
            accepted=True,
            reason="compound",
            program=outcome.program,
            compare=tuple(decl.name for decl in program.arrays),
        )
    ]
