"""Differential oracle: analytic locality prediction vs the exact trace.

Fourth stage of the verify hierarchy (after dependence coverage,
execution equivalence, and cache-engine equivalence): for every fuzzed
nest, the trace-derived reuse-distance histogram is compared against
:func:`repro.locality.analytic.predict_locality` at element granularity
(``line=8``):

* the three engines (event-trace per-reference, batched block-trace,
  and the cache layer's reference analyzer) must agree bit-for-bit on
  the aggregate histogram;
* predicted access counts must equal traced counts, and the predicted
  histogram's mass must equal the access count (both hold by
  construction — a violation is a bug, not model error);
* when the predictor claims the **exact** path, the predicted histogram
  must equal the traced histogram exactly;
* on the model path, the traced hit rate at each probed capacity must
  lie inside a predicted envelope: between the predicted rate at half
  the capacity and at twice the capacity, widened by an additive bound.
  The factor-two slack absorbs boundary quantization (the model's
  footprint distances are full-window estimates; real reuses land
  spread just below them), while still catching structural blunders —
  a predictor that calls everything a hit, or everything cold, fails
  at both ends of the envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.reuse import reuse_profile
from repro.ir.nodes import Program
from repro.locality.analytic import predict_locality
from repro.locality.histogram import per_ref_profile, sampled_profile

__all__ = ["LocalityMismatch", "check_locality", "MODEL_RATE_BOUND"]

#: Element-granularity line size used by the oracle.
ORACLE_LINE = 8

#: FA-LRU capacities (in lines) probed on the model path.
MODEL_CAPACITIES = (16, 256)

#: Additive widening of the model-path hit-rate envelope.
MODEL_RATE_BOUND = 0.25


@dataclass(frozen=True)
class LocalityMismatch:
    """First divergence between prediction and trace for one program."""

    where: str  # "engines" | "accesses" | "mass" | "exact" | "model"
    path: str  # "exact" | "model"
    detail: str


def _first_histogram_diff(a, b) -> str:
    keys = sorted(set(a) | set(b), key=lambda k: (k != -1, k))
    for key in keys:
        if a.get(key, 0) != b.get(key, 0):
            label = "cold" if key == -1 else f"d={key}"
            return f"{label}: predicted {a.get(key, 0)} != traced {b.get(key, 0)}"
    return "histograms identical"


def check_locality(
    program: Program, line: int = ORACLE_LINE
) -> LocalityMismatch | None:
    """Run the full locality oracle on one program; None when clean."""
    trace = reuse_profile(program, line=line)

    # Engine agreement: per-reference and batched engines must reproduce
    # the reference histogram exactly (sampling off).
    per_ref = per_ref_profile(program, line=line)
    if per_ref.total.histogram != trace.histogram:
        return LocalityMismatch(
            "engines",
            "-",
            "per-reference engine diverges: "
            + _first_histogram_diff(per_ref.total.histogram, trace.histogram),
        )
    block = sampled_profile(program, line=line, sample_rate=1.0)
    if block.histogram != trace.histogram:
        return LocalityMismatch(
            "engines",
            "-",
            "block engine diverges: "
            + _first_histogram_diff(block.histogram, trace.histogram),
        )

    prediction = predict_locality(program, line=line)
    path = "exact" if prediction.exact else "model"
    if prediction.accesses != trace.accesses:
        return LocalityMismatch(
            "accesses",
            path,
            f"predicted {prediction.accesses} accesses, traced {trace.accesses}",
        )
    predicted = prediction.predicted_histogram()
    mass = sum(predicted.values())
    if mass != prediction.accesses:
        return LocalityMismatch(
            "mass",
            path,
            f"histogram mass {mass} != access count {prediction.accesses}",
        )

    if prediction.exact:
        if predicted != trace.histogram:
            return LocalityMismatch(
                "exact",
                path,
                _first_histogram_diff(predicted, trace.histogram),
            )
        return None

    if trace.accesses == 0:
        return None
    for capacity in MODEL_CAPACITIES:
        lo = prediction.hit_rate_for_capacity(capacity // 2, include_cold=True)
        hi = prediction.hit_rate_for_capacity(capacity * 2, include_cold=True)
        want = trace.hit_rate_for_capacity(capacity, include_cold=True)
        if not (lo - MODEL_RATE_BOUND <= want <= hi + MODEL_RATE_BOUND):
            return LocalityMismatch(
                "model",
                path,
                f"hit rate at {capacity} lines: traced {want:.3f} outside "
                f"predicted envelope [{lo:.3f}, {hi:.3f}] "
                f"(+-{MODEL_RATE_BOUND})",
            )
    return None
