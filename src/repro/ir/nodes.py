"""Structural IR nodes: statements, loops, declarations, programs.

A :class:`Program` is a list of top-level nodes; each node is either an
:class:`Assign` statement or a :class:`Loop` whose body is again a list of
nodes. Loops carry affine bounds and an integer step, exactly the shape the
paper's analyses expect (Fortran ``DO`` loops).

Nodes are immutable; transformations build new trees. Statements carry a
stable ``sid`` so that a statement's identity survives transformation (the
statistics collectors rely on this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import IRError
from repro.ir.affine import Affine, as_affine
from repro.ir.expr import Expr, Ref, walk_refs
from repro.ir.span import Span

__all__ = ["Assign", "Loop", "ArrayDecl", "Program", "Node"]


@dataclass(frozen=True)
class Assign:
    """An assignment statement ``lhs = rhs``.

    ``lhs`` is an array (or rank-0 scalar) reference; ``rhs`` an expression.
    ``sid`` identifies the statement across transformations. ``span`` is
    the source region the frontend parsed this statement from (None for
    programmatically built or transformed trees); it is provenance only
    and excluded from equality/hashing.
    """

    lhs: Ref
    rhs: Expr
    sid: int = -1
    span: Span | None = field(default=None, compare=False, repr=False)

    @property
    def reads(self) -> tuple[Ref, ...]:
        """Array references read by this statement (RHS occurrences)."""
        return tuple(walk_refs(self.rhs))

    @property
    def writes(self) -> tuple[Ref, ...]:
        return (self.lhs,)

    @property
    def refs(self) -> tuple[Ref, ...]:
        """All references: writes first, then reads."""
        return self.writes + self.reads

    def with_sid(self, sid: int) -> "Assign":
        return replace(self, sid=sid)

    def rename_indices(self, mapping: Mapping[str, str]) -> "Assign":
        """Rename loop index variables throughout the statement."""
        from repro.ir.visit import rename_expr_indices

        return Assign(
            self.lhs.rename_indices(mapping),
            rename_expr_indices(self.rhs, mapping),
            self.sid,
            self.span,
        )

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


Node = "Loop | Assign"


@dataclass(frozen=True)
class Loop:
    """A ``DO var = lb, ub, step`` loop with a body of nodes.

    Bounds are inclusive, following Fortran. ``step`` must be a non-zero
    integer; negative steps encode reversed loops.
    """

    var: str
    lb: Affine
    ub: Affine
    step: int
    body: tuple["Loop | Assign", ...]
    #: Source region of the DO header (provenance only; never compared).
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.step == 0:
            raise IRError(f"loop {self.var} has zero step")
        if not self.var:
            raise IRError("loop variable must be named")

    @staticmethod
    def make(
        var: str,
        lb: "Affine | int | str",
        ub: "Affine | int | str",
        body: Sequence["Loop | Assign"],
        step: int = 1,
    ) -> "Loop":
        return Loop(var, as_affine(lb), as_affine(ub), step, tuple(body))

    def with_body(self, body: Sequence["Loop | Assign"]) -> "Loop":
        return replace(self, body=tuple(body))

    def trip_count(self, env: Mapping[str, int]) -> int:
        """Concrete number of iterations under ``env`` (0 when empty)."""
        lb = self.lb.evaluate(env)
        ub = self.ub.evaluate(env)
        count = (ub - lb + self.step) // self.step
        return max(count, 0)

    def iter_values(self, env: Mapping[str, int]) -> range:
        """The concrete iteration range under ``env``."""
        lb = self.lb.evaluate(env)
        ub = self.ub.evaluate(env)
        if self.step > 0:
            return range(lb, ub + 1, self.step)
        return range(lb, ub - 1, self.step)

    @property
    def statements(self) -> tuple[Assign, ...]:
        """All statements in the loop, in source order."""
        out: list[Assign] = []
        for node in self.body:
            if isinstance(node, Assign):
                out.append(node)
            else:
                out.extend(node.statements)
        return tuple(out)

    @property
    def inner_loops(self) -> tuple["Loop", ...]:
        """Directly nested loops (not transitively)."""
        return tuple(n for n in self.body if isinstance(n, Loop))

    def is_perfect_nest(self) -> bool:
        """True when this loop heads a perfect nest.

        A nest is perfect when every non-innermost level contains exactly
        one node, which is a loop.
        """
        node: Loop = self
        while True:
            if all(isinstance(c, Assign) for c in node.body):
                return True
            if len(node.body) == 1 and isinstance(node.body[0], Loop):
                node = node.body[0]
                continue
            return False

    def perfect_nest_loops(self) -> tuple["Loop", ...]:
        """The maximal perfectly nested loop chain headed by this loop.

        Always includes ``self``; extends inward while each level has a
        single loop as its only child.
        """
        chain = [self]
        node: Loop = self
        while len(node.body) == 1 and isinstance(node.body[0], Loop):
            node = node.body[0]
            chain.append(node)
        return tuple(chain)

    @property
    def depth(self) -> int:
        """Maximum loop nesting depth of the tree rooted here."""
        inner = [n.depth for n in self.body if isinstance(n, Loop)]
        return 1 + (max(inner) if inner else 0)

    def __str__(self) -> str:
        from repro.ir.pretty import pretty

        return pretty(self)


@dataclass(frozen=True)
class ArrayDecl:
    """An array declaration: name, per-dimension extents, element size.

    Extents are affine (usually a constant or a single symbolic parameter).
    A rank-0 declaration is a scalar. ``elem_size`` is in bytes and feeds
    the address-layout computation; 8 matches REAL*8.
    """

    name: str
    shape: tuple[Affine, ...]
    elem_size: int = 8

    @staticmethod
    def make(name: str, shape: Sequence["Affine | int | str"], elem_size: int = 8) -> "ArrayDecl":
        return ArrayDecl(name, tuple(as_affine(s) for s in shape), elem_size)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def extents(self, env: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete extents under ``env``."""
        return tuple(s.evaluate(env) for s in self.shape)

    def __str__(self) -> str:
        if not self.shape:
            return self.name
        return f"{self.name}({', '.join(map(str, self.shape))})"


@dataclass(frozen=True)
class Program:
    """A whole program: parameters, array declarations, and a node list.

    ``params`` maps symbolic parameter names to their default concrete
    values (the "problem size"); the interpreter and the cost model's
    concrete mode read them. ``arrays`` declares every array referenced by
    the body.
    """

    name: str
    params: tuple[tuple[str, int], ...]
    arrays: tuple[ArrayDecl, ...]
    body: tuple["Loop | Assign", ...]

    @staticmethod
    def make(
        name: str,
        body: Sequence["Loop | Assign"],
        arrays: Iterable[ArrayDecl] = (),
        params: Mapping[str, int] | None = None,
    ) -> "Program":
        prog = Program(
            name,
            tuple(sorted((params or {}).items())),
            tuple(arrays),
            tuple(body),
        )
        return prog.renumbered()

    @property
    def param_env(self) -> dict[str, int]:
        return dict(self.params)

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise IRError(f"array {name!r} not declared in program {self.name!r}")

    def has_array(self, name: str) -> bool:
        return any(decl.name == name for decl in self.arrays)

    @property
    def top_loops(self) -> tuple[Loop, ...]:
        return tuple(n for n in self.body if isinstance(n, Loop))

    @property
    def statements(self) -> tuple[Assign, ...]:
        out: list[Assign] = []
        for node in self.body:
            if isinstance(node, Assign):
                out.append(node)
            else:
                out.extend(node.statements)
        return tuple(out)

    def with_body(self, body: Sequence["Loop | Assign"]) -> "Program":
        return replace(self, body=tuple(body))

    def with_params(self, params: Mapping[str, int]) -> "Program":
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=tuple(sorted(merged.items())))

    def scaled(self, **params: int) -> "Program":
        """A copy with some parameters overridden (e.g. ``prog.scaled(N=64)``)."""
        return self.with_params(params)

    def renumbered(self) -> "Program":
        """Assign fresh consecutive sids to every statement.

        Only used at construction time; transformations preserve sids.
        """
        counter = itertools.count()

        def renumber(node: "Loop | Assign") -> "Loop | Assign":
            if isinstance(node, Assign):
                return node.with_sid(next(counter))
            return node.with_body([renumber(c) for c in node.body])

        return replace(self, body=tuple(renumber(n) for n in self.body))

    def __str__(self) -> str:
        from repro.ir.pretty import pretty_program

        return pretty_program(self)
