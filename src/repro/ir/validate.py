"""Structural validation of programs.

Checks performed:

* every referenced array is declared, with matching rank;
* arrays are declared at most once, and array/parameter names are
  disjoint;
* loop index variables are not re-used by a nested loop, and never
  collide with an array or parameter name;
* subscripts and bounds refer only to enclosing loop indices or declared
  parameters;
* statement sids are unique.

Validation is cheap and run automatically by :class:`ProgramBuilder`,
the frontend (after every parse), and the lint engine after every fix-it
application; transformations revalidate in tests.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program

__all__ = ["validate_program"]


def validate_program(program: Program) -> None:
    """Raise :class:`IRError` when the program is structurally invalid."""
    params = set(dict(program.params))
    declared: dict[str, ArrayDecl] = {}
    for d in program.arrays:
        if d.name in declared:
            raise IRError(f"array {d.name!r} declared twice")
        if d.name in params:
            raise IRError(f"name {d.name!r} is both an array and a parameter")
        declared[d.name] = d
    seen_sids: set[int] = set()

    def check_affine(form, in_scope: set[str], where: str) -> None:
        unknown = form.names - in_scope - params
        if unknown:
            raise IRError(
                f"{where}: unknown name(s) {sorted(unknown)} in {form} "
                f"(in-scope indices: {sorted(in_scope)})"
            )

    def check_stmt(stmt: Assign, in_scope: set[str]) -> None:
        if stmt.sid in seen_sids:
            raise IRError(f"duplicate statement sid {stmt.sid}")
        seen_sids.add(stmt.sid)
        for ref in stmt.refs:
            decl = declared.get(ref.array)
            if decl is None:
                raise IRError(f"statement {stmt.sid}: array {ref.array!r} not declared")
            if decl.rank != ref.rank:
                raise IRError(
                    f"statement {stmt.sid}: {ref} has rank {ref.rank}, "
                    f"declared rank {decl.rank}"
                )
            for sub in ref.subs:
                check_affine(sub, in_scope, f"statement {stmt.sid} ({ref})")

    def walk(node: "Loop | Assign", in_scope: set[str]) -> None:
        if isinstance(node, Assign):
            check_stmt(node, in_scope)
            return
        if node.var in in_scope:
            raise IRError(f"loop index {node.var!r} shadows an enclosing loop")
        if node.var in declared:
            raise IRError(f"loop index {node.var!r} collides with an array name")
        if node.var in params:
            raise IRError(f"loop index {node.var!r} collides with a parameter")
        check_affine(node.lb, in_scope, f"loop {node.var} lower bound")
        check_affine(node.ub, in_scope, f"loop {node.var} upper bound")
        inner = in_scope | {node.var}
        for child in node.body:
            walk(child, inner)

    for decl in program.arrays:
        for extent in decl.shape:
            check_affine(extent, set(), f"array {decl.name} extent")
    for node in program.body:
        walk(node, set())

    # Loop index variables must be globally unique within a program: the
    # analyses key nest context by index name. The frontend and the
    # transformations both rename to maintain this.
    from repro.ir.visit import iter_loops

    seen_vars: set[str] = set()
    for loop in iter_loops(program):
        if loop.var in seen_vars:
            raise IRError(f"loop index {loop.var!r} used by two loops")
        seen_vars.add(loop.var)
