"""Loop-nest intermediate representation.

Public surface:

* :class:`Affine` — affine integer forms (subscripts, bounds).
* Expression nodes — :class:`Const`, :class:`Sym`, :class:`Var`,
  :class:`Bin`, :class:`Call`, :class:`Ref`.
* Structure nodes — :class:`Assign`, :class:`Loop`, :class:`ArrayDecl`,
  :class:`Program`.
* :class:`ProgramBuilder` — the construction DSL.
* Pretty printing and tree-walking helpers.
"""

from repro.ir.affine import Affine, as_affine
from repro.ir.builder import ArrayHandle, Idx, ProgramBuilder
from repro.ir.canon import canonical_program, canonical_text, content_digest
from repro.ir.expr import Bin, Call, Const, Expr, Ref, Sym, Var, walk_refs
from repro.ir.jsonio import program_from_json, program_to_json
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program
from repro.ir.pretty import pretty, pretty_program
from repro.ir.span import Span
from repro.ir.validate import validate_program
from repro.ir.visit import (
    enclosing_loops,
    iter_loops,
    iter_nodes,
    iter_statements,
    statement_positions,
)

__all__ = [
    "Affine",
    "as_affine",
    "ArrayDecl",
    "ArrayHandle",
    "Assign",
    "Bin",
    "Call",
    "Const",
    "Expr",
    "Idx",
    "Loop",
    "Program",
    "ProgramBuilder",
    "Ref",
    "Span",
    "Sym",
    "Var",
    "canonical_program",
    "canonical_text",
    "content_digest",
    "enclosing_loops",
    "iter_loops",
    "iter_nodes",
    "iter_statements",
    "pretty",
    "pretty_program",
    "program_from_json",
    "program_to_json",
    "statement_positions",
    "validate_program",
    "walk_refs",
]
