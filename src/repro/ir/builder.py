"""A small DSL for constructing IR programs in Python.

Example::

    b = ProgramBuilder("matmul")
    N = b.param("N", 512)
    I, J, K = b.indices("I", "J", "K")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.loop(J, 1, N):
        with b.loop(K, 1, N):
            with b.loop(I, 1, N):
                b.assign(C[I, J], C[I, J] + A[I, K] * B[K, J])
    prog = b.build()

Index handles support affine arithmetic (``I + 1``, ``2 * K``) for use in
subscripts and loop bounds.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import IRError, NonAffineError
from repro.ir.affine import Affine, as_affine
from repro.ir.expr import Expr, Ref
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program

__all__ = ["ProgramBuilder", "Idx", "ArrayHandle"]


class Idx:
    """An affine index expression handle used in subscripts and bounds."""

    __slots__ = ("form",)

    def __init__(self, form: "Affine | int | str"):
        self.form = as_affine(form)

    def __add__(self, other: "Idx | int") -> "Idx":
        return Idx(self.form + _form(other))

    __radd__ = __add__

    def __sub__(self, other: "Idx | int") -> "Idx":
        return Idx(self.form - _form(other))

    def __rsub__(self, other: "Idx | int") -> "Idx":
        return Idx(_form(other) - self.form)

    def __mul__(self, k: int) -> "Idx":
        if isinstance(k, Idx):
            if k.form.is_constant():
                k = k.form.const
            elif self.form.is_constant():
                return Idx(k.form * self.form.const)
            else:
                raise NonAffineError(f"non-linear index product {self} * {k}")
        return Idx(self.form * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Idx":
        return Idx(-self.form)

    def __str__(self) -> str:
        return str(self.form)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Idx({self.form})"


def _form(value: "Idx | Affine | int | str") -> Affine:
    if isinstance(value, Idx):
        return value.form
    return as_affine(value)


class ArrayHandle:
    """Indexable handle returned by :meth:`ProgramBuilder.array`.

    ``A[I, J + 1]`` produces a :class:`Ref` usable both as an assignment
    target and inside right-hand-side expressions.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __getitem__(self, subs) -> Ref:
        if not isinstance(subs, tuple):
            subs = (subs,)
        return Ref(self.name, tuple(_form(s) for s in subs))

    @property
    def scalar(self) -> Ref:
        """The rank-0 reference for a scalar declaration."""
        return Ref(self.name, ())

    def __str__(self) -> str:
        return self.name


class ProgramBuilder:
    """Imperative builder producing an immutable :class:`Program`."""

    def __init__(self, name: str):
        self.name = name
        self._params: dict[str, int] = {}
        self._arrays: list[ArrayDecl] = []
        self._array_names: set[str] = set()
        self._body: list[Loop | Assign] = []
        self._stack: list[list[Loop | Assign]] = [self._body]
        self._built = False

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def param(self, name: str, value: int) -> Idx:
        """Declare a symbolic size parameter with a default concrete value."""
        if name in self._params:
            raise IRError(f"parameter {name!r} declared twice")
        self._params[name] = int(value)
        return Idx(name)

    def indices(self, *names: str) -> tuple[Idx, ...]:
        """Handles for loop index variables (declaration-free)."""
        return tuple(Idx(n) for n in names)

    def array(self, name: str, shape: Sequence["Idx | int | str"] = (), elem_size: int = 8) -> ArrayHandle:
        """Declare an array (empty shape = scalar) and return its handle."""
        if name in self._array_names:
            raise IRError(f"array {name!r} declared twice")
        self._array_names.add(name)
        self._arrays.append(ArrayDecl(name, tuple(_form(s) for s in shape), elem_size))
        return ArrayHandle(name)

    def scalar(self, name: str, elem_size: int = 8) -> ArrayHandle:
        """Declare a scalar variable (rank-0 array)."""
        return self.array(name, (), elem_size)

    # ------------------------------------------------------------------
    # Body construction
    # ------------------------------------------------------------------
    @contextmanager
    def loop(
        self,
        var: "Idx | str",
        lb: "Idx | int | str",
        ub: "Idx | int | str",
        step: int = 1,
    ) -> Iterator[Idx]:
        """Open a ``DO`` loop; statements added inside land in its body."""
        name = var if isinstance(var, str) else _single_var_name(var)
        body: list[Loop | Assign] = []
        self._stack.append(body)
        try:
            yield Idx(name)
        finally:
            self._stack.pop()
        self._stack[-1].append(Loop(name, _form(lb), _form(ub), step, tuple(body)))

    def assign(self, lhs: Ref, rhs: "Expr | float | int") -> None:
        """Append an assignment statement at the current position."""
        if not isinstance(lhs, Ref):
            raise IRError(f"assignment target must be an array reference, got {lhs!r}")
        if isinstance(rhs, (int, float)):
            from repro.ir.expr import Const

            rhs = Const(rhs)
        self._stack[-1].append(Assign(lhs, rhs))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Produce the finished program (single use)."""
        if self._built:
            raise IRError("builder already consumed")
        if len(self._stack) != 1:
            raise IRError("unclosed loop context")
        self._built = True
        program = Program.make(
            self.name, self._body, arrays=self._arrays, params=self._params
        )
        from repro.ir.validate import validate_program

        validate_program(program)
        return program


def _single_var_name(idx: Idx) -> str:
    form = idx.form
    if len(form.terms) == 1 and form.const == 0 and form.terms[0][1] == 1:
        return form.terms[0][0]
    raise IRError(f"loop variable must be a bare index, got {form}")
