"""Source spans: where an IR node came from in the original text.

The frontend attaches a :class:`Span` to every parsed loop and statement
so downstream consumers (diagnostics, remarks, SARIF export) can anchor
messages to source locations. Spans are *carried* metadata: they are
excluded from structural equality and hashing, so two nodes that differ
only in provenance still compare equal (the analysis caches key on
structural identity). Transformations that rebuild nodes drop spans —
diagnostics always anchor on the tree the frontend produced.

All positions are 1-based, matching editor conventions and the lexer's
:class:`~repro.frontend.lexer.Token`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Span"]


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, 1-based lines and columns."""

    line: int
    column: int
    end_line: int
    end_column: int

    @staticmethod
    def point(line: int, column: int, width: int = 1) -> "Span":
        """A span covering ``width`` characters on one line."""
        return Span(line, column, line, column + width)

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return Span(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"
