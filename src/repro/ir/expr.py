"""Expression trees for statement right-hand sides.

The compiler proper (dependence analysis, cost model, transformations) only
cares about the *array references* inside an expression, whose subscripts
are affine forms. The interpreter additionally evaluates expressions
numerically so that transformation correctness can be checked value-for-value.

The node set is deliberately small: constants, symbolic parameters, loop
index variables, binary arithmetic, intrinsic calls, and array references.
All nodes are immutable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import IRError, NonAffineError
from repro.ir.affine import Affine, as_affine

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Var",
    "Bin",
    "Call",
    "Ref",
    "INTRINSICS",
    "walk_refs",
]

#: Intrinsic functions the interpreter understands.
INTRINSICS: dict[str, Callable[..., float]] = {
    "SQRT": math.sqrt,
    "ABS": abs,
    "MIN": min,
    "MAX": max,
    "EXP": math.exp,
    "LOG": math.log,
    "SIN": math.sin,
    "COS": math.cos,
    "MOD": lambda a, b: math.fmod(a, b),
}

_BINOPS = frozenset({"+", "-", "*", "/"})


class Expr:
    """Abstract base for expression nodes."""

    __slots__ = ()

    # Operator sugar so tests/examples can write ``a + b * c`` directly.
    def __add__(self, other: "Expr | float | int") -> "Bin":
        return Bin("+", self, _coerce(other))

    def __radd__(self, other: "Expr | float | int") -> "Bin":
        return Bin("+", _coerce(other), self)

    def __sub__(self, other: "Expr | float | int") -> "Bin":
        return Bin("-", self, _coerce(other))

    def __rsub__(self, other: "Expr | float | int") -> "Bin":
        return Bin("-", _coerce(other), self)

    def __mul__(self, other: "Expr | float | int") -> "Bin":
        return Bin("*", self, _coerce(other))

    def __rmul__(self, other: "Expr | float | int") -> "Bin":
        return Bin("*", _coerce(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "Bin":
        return Bin("/", self, _coerce(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "Bin":
        return Bin("/", _coerce(other), self)

    def __neg__(self) -> "Bin":
        return Bin("-", Const(0), self)

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()


def _coerce(value: "Expr | float | int") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise IRError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float | int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym(Expr):
    """A symbolic program parameter (e.g. the problem size ``N``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Var(Expr):
    """A loop index variable occurrence in a value position."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Bin(Expr):
    """A binary arithmetic operation (``+ - * /``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise IRError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic function call (``SQRT``, ``ABS``, ...)."""

    fn: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.fn.upper() not in INTRINSICS:
            raise IRError(f"unknown intrinsic {self.fn!r}")
        object.__setattr__(self, "fn", self.fn.upper())

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Ref(Expr):
    """An array reference ``A(f1, f2, ...)`` with affine subscripts.

    Subscripts are ordered like Fortran source: the *first* subscript is the
    one that varies fastest in memory (column-major layout). A scalar
    variable is modelled as a rank-0 reference (empty subscript tuple).
    """

    array: str
    subs: tuple[Affine, ...]

    @staticmethod
    def make(array: str, *subs: "Affine | int | str") -> "Ref":
        return Ref(array, tuple(as_affine(s) for s in subs))

    @property
    def rank(self) -> int:
        return len(self.subs)

    def rename_indices(self, mapping: Mapping[str, str]) -> "Ref":
        return Ref(self.array, tuple(s.rename(mapping) for s in self.subs))

    def substitute(self, name: str, replacement: "Affine | int") -> "Ref":
        return Ref(self.array, tuple(s.substitute(name, replacement) for s in self.subs))

    def __str__(self) -> str:
        if not self.subs:
            return self.array
        return f"{self.array}({', '.join(map(str, self.subs))})"


def affine_to_expr(form: Affine) -> Expr:
    """Lower an affine form back to an expression tree.

    Used when a substitution must land in a *value* position (e.g.
    unroll-and-jam rewriting ``A(I) = I`` copies to ``A(I+1) = I + 1``).
    """
    expr: Expr | None = None
    for name, coeff in form.terms:
        term: Expr = Var(name) if coeff == 1 else Bin("*", Const(coeff), Var(name))
        expr = term if expr is None else Bin("+", expr, term)
    if expr is None:
        return Const(form.const)
    if form.const > 0:
        expr = Bin("+", expr, Const(form.const))
    elif form.const < 0:
        expr = Bin("-", expr, Const(-form.const))
    return expr


def walk_refs(expr: Expr) -> Iterator[Ref]:
    """Yield every :class:`Ref` in ``expr`` in left-to-right order."""
    if isinstance(expr, Ref):
        yield expr
    for child in expr.children():
        yield from walk_refs(child)


def expr_to_affine(expr: Expr) -> Affine:
    """Convert an expression tree to an affine form when possible.

    Used by the frontend to lower subscript and bound expressions.

    Raises:
        NonAffineError: for non-linear shapes, calls, or array references.
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, float) and not expr.value.is_integer():
            raise NonAffineError(f"non-integer constant {expr.value} in affine position")
        return Affine.constant(int(expr.value))
    if isinstance(expr, (Sym, Var)):
        return Affine.var(expr.name)
    if isinstance(expr, Bin):
        left = expr_to_affine(expr.left)
        right = expr_to_affine(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant():
                return right * left.const
            if right.is_constant():
                return left * right.const
            raise NonAffineError(f"non-linear product {expr}")
        if expr.op == "/":
            if right.is_constant() and right.const != 0:
                quotient, remainder = divmod_affine(left, right.const)
                if remainder is not None:
                    raise NonAffineError(f"non-exact division {expr}")
                return quotient
            raise NonAffineError(f"non-constant division {expr}")
    raise NonAffineError(f"{expr} is not affine")


def divmod_affine(form: Affine, k: int) -> tuple[Affine | None, int | None]:
    """Divide an affine form by ``k`` exactly.

    Returns ``(quotient, None)`` when every coefficient and the constant are
    divisible by ``k``, else ``(None, -1)``.
    """
    if any(c % k for _, c in form.terms) or form.const % k:
        return None, -1
    return Affine.build({n: c // k for n, c in form.terms}, form.const // k), None
