"""Fortran-style pretty printer for the IR.

The output is close enough to Fortran 77 that the frontend can re-parse it
(round-trip tested), which doubles as a serialization format.
"""

from __future__ import annotations

from repro.ir.nodes import Assign, Loop, Program

__all__ = ["pretty", "pretty_program"]

_INDENT = "  "


def _emit(node: "Loop | Assign", depth: int, lines: list[str]) -> None:
    pad = _INDENT * depth
    if isinstance(node, Assign):
        lines.append(f"{pad}{node.lhs} = {node.rhs}")
        return
    header = f"{pad}DO {node.var} = {node.lb}, {node.ub}"
    if node.step != 1:
        header += f", {node.step}"
    lines.append(header)
    for child in node.body:
        _emit(child, depth + 1, lines)
    lines.append(f"{pad}ENDDO")


def pretty(node: "Loop | Assign", depth: int = 0) -> str:
    """Render a single loop or statement."""
    lines: list[str] = []
    _emit(node, depth, lines)
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    """Render a whole program, including declarations."""
    lines = [f"PROGRAM {program.name}"]
    for name, value in program.params:
        lines.append(f"PARAMETER {name} = {value}")
    for decl in program.arrays:
        if decl.rank:
            dims = ", ".join(str(s) for s in decl.shape)
            lines.append(f"REAL {decl.name}({dims})")
        else:
            lines.append(f"REAL {decl.name}")
    for node in program.body:
        _emit(node, 0, lines)
    lines.append("END")
    return "\n".join(lines)
