"""Tree walkers and query helpers over the IR.

These are free functions (not a visitor class hierarchy): the IR is small
and immutable, and most analyses want simple generators or index maps.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import IRError
from repro.ir.affine import Affine, as_affine
from repro.ir.expr import Bin, Call, Const, Expr, Ref, Sym, Var
from repro.ir.nodes import Assign, Loop, Program

__all__ = [
    "iter_nodes",
    "iter_loops",
    "iter_statements",
    "enclosing_loops",
    "statement_positions",
    "loop_index_names",
    "map_statements",
    "rename_expr_indices",
    "rename_loops",
    "fresh_name",
    "substitute_expr",
]


def iter_nodes(root: "Program | Loop") -> Iterator["Loop | Assign"]:
    """Yield every node under ``root`` in pre-order (excluding ``root``
    itself when it is a Program)."""
    body = root.body
    for node in body:
        yield node
        if isinstance(node, Loop):
            yield from iter_nodes(node)


def iter_loops(root: "Program | Loop") -> Iterator[Loop]:
    """Yield every loop under ``root`` in pre-order."""
    if isinstance(root, Loop):
        yield root
    for node in root.body:
        if isinstance(node, Loop):
            yield from iter_loops(node)


def iter_statements(root: "Program | Loop") -> Iterator[Assign]:
    """Yield every statement under ``root`` in source order."""
    for node in root.body:
        if isinstance(node, Assign):
            yield node
        else:
            yield from iter_statements(node)


def enclosing_loops(root: "Program | Loop") -> dict[int, tuple[Loop, ...]]:
    """Map each statement sid to its enclosing loop chain, outermost first.

    When ``root`` is a Loop, the chain includes ``root``.
    """
    out: dict[int, tuple[Loop, ...]] = {}

    def walk(node: "Loop | Assign", chain: tuple[Loop, ...]) -> None:
        if isinstance(node, Assign):
            if node.sid in out:
                raise IRError(f"duplicate statement sid {node.sid}")
            out[node.sid] = chain
            return
        for child in node.body:
            walk(child, chain + (node,))

    if isinstance(root, Loop):
        for child in root.body:
            walk(child, (root,))
    else:
        for child in root.body:
            walk(child, ())
    return out


def statement_positions(root: "Program | Loop") -> dict[int, int]:
    """Map each statement sid to its 0-based source-order position."""
    return {stmt.sid: i for i, stmt in enumerate(iter_statements(root))}


def loop_index_names(root: "Program | Loop") -> frozenset[str]:
    """All loop index variable names appearing under ``root``."""
    names = {loop.var for loop in iter_loops(root)}
    return frozenset(names)


def map_statements(
    node: "Loop | Assign", fn: Callable[[Assign], Assign]
) -> "Loop | Assign":
    """Rebuild the tree with ``fn`` applied to every statement."""
    if isinstance(node, Assign):
        return fn(node)
    return node.with_body([map_statements(c, fn) for c in node.body])


def rename_loops(node: "Loop | Assign", mapping: Mapping[str, str]) -> "Loop | Assign":
    """Rename loop index variables throughout a subtree.

    Renames loop headers (var, bounds) and every occurrence in statement
    subscripts and value expressions.
    """
    if isinstance(node, Assign):
        return node.rename_indices(mapping)
    return Loop(
        mapping.get(node.var, node.var),
        node.lb.rename(mapping),
        node.ub.rename(mapping),
        node.step,
        tuple(rename_loops(child, mapping) for child in node.body),
    )


def fresh_name(base: str, used: set[str]) -> str:
    """A name not in ``used``, derived from ``base`` (``I``, ``I_2``, ...)."""
    if base not in used:
        return base
    counter = 2
    while f"{base}_{counter}" in used:
        counter += 1
    return f"{base}_{counter}"


def rename_expr_indices(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename loop index variables inside an expression tree."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Sym):
        return Sym(mapping.get(expr.name, expr.name))
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, Bin):
        return Bin(
            expr.op,
            rename_expr_indices(expr.left, mapping),
            rename_expr_indices(expr.right, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.fn, tuple(rename_expr_indices(a, mapping) for a in expr.args))
    if isinstance(expr, Ref):
        return expr.rename_indices(mapping)
    raise IRError(f"unknown expression node {expr!r}")


def substitute_expr(
    expr: Expr, name: str, replacement: Affine, values: bool = True
) -> Expr:
    """Substitute an affine form for an index variable.

    Rewrites both subscript occurrences and — when ``values`` is true —
    value-position occurrences (bare :class:`Var` nodes), lowering the
    replacement back to an expression tree for the latter.  Transformations
    that duplicate statements under a shifted index (unroll-and-jam) need
    the value rewrite: ``A(I) = I`` unrolled by 2 must read ``I + 1`` in
    the second copy, not ``I``.
    """
    if isinstance(expr, Var):
        if values and expr.name == name:
            from repro.ir.expr import affine_to_expr

            return affine_to_expr(as_affine(replacement))
        return expr
    if isinstance(expr, (Const, Sym)):
        return expr
    if isinstance(expr, Bin):
        return Bin(
            expr.op,
            substitute_expr(expr.left, name, replacement, values),
            substitute_expr(expr.right, name, replacement, values),
        )
    if isinstance(expr, Call):
        return Call(
            expr.fn,
            tuple(substitute_expr(a, name, replacement, values) for a in expr.args),
        )
    if isinstance(expr, Ref):
        return expr.substitute(name, replacement)
    raise IRError(f"unknown expression node {expr!r}")
