"""Affine integer forms over named variables.

An :class:`Affine` is a linear combination ``sum(c_i * name_i) + const``
with integer coefficients. Names may refer either to loop index variables
(``I``, ``J``, ...) or to symbolic program parameters (``N``, ``M``, ...);
the IR does not distinguish them here — context (the set of enclosing loop
indices) decides which is which.

Affine forms are the currency of the whole compiler: array subscripts, loop
bounds, and dependence-test inputs are all affine. They are immutable and
hashable so they can be used as dict keys and set members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import NonAffineError

__all__ = ["Affine", "AffineLike", "as_affine"]

# Things accepted wherever an Affine is expected.
AffineLike = "Affine | int | str"


@dataclass(frozen=True)
class Affine:
    """An immutable affine form ``sum(coeff * name) + const``.

    ``terms`` is a sorted tuple of ``(name, coeff)`` pairs with no zero
    coefficients and no duplicate names; ``const`` is a plain int.
    Use :meth:`build` (or the arithmetic operators) rather than the raw
    constructor so the canonical-form invariants hold.
    """

    terms: tuple[tuple[str, int], ...]
    const: int

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(coeffs: Mapping[str, int] | None = None, const: int = 0) -> "Affine":
        """Create an affine form from a coefficient mapping, canonicalized."""
        coeffs = coeffs or {}
        terms = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
        return Affine(terms, int(const))

    @staticmethod
    def constant(value: int) -> "Affine":
        """The constant form ``value``."""
        return Affine((), int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        """The form ``coeff * name``."""
        return Affine.build({name: coeff})

    @staticmethod
    def parse(text: str) -> "Affine":
        """Parse a simple affine string: ``"I"``, ``"I-1"``, ``"2*K+3"``.

        Grammar: sum of terms; a term is ``[int *] name`` or ``int``.
        Whitespace is ignored. Raises :class:`NonAffineError` on anything
        else (no parentheses, no products of variables).
        """
        import re

        text = text.replace(" ", "")
        if not text:
            raise NonAffineError("empty affine expression")
        token_re = re.compile(r"([+-]?)(\d+\*)?([A-Za-z_][A-Za-z_0-9]*)|([+-]?)(\d+)")
        pos = 0
        result = Affine.constant(0)
        while pos < len(text):
            match = token_re.match(text, pos)
            if not match or match.start() != pos:
                raise NonAffineError(f"cannot parse affine expression {text!r}")
            if match.group(3):  # variable term
                sign = -1 if match.group(1) == "-" else 1
                coeff = int(match.group(2)[:-1]) if match.group(2) else 1
                result = result + Affine.var(match.group(3), sign * coeff)
            else:  # constant term
                sign = -1 if match.group(4) == "-" else 1
                result = result + sign * int(match.group(5))
            pos = match.end()
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 when absent)."""
        for n, c in self.terms:
            if n == name:
                return c
        return 0

    @property
    def names(self) -> frozenset[str]:
        """All variable names with non-zero coefficient."""
        return frozenset(n for n, _ in self.terms)

    def is_constant(self) -> bool:
        """True when the form has no variable terms."""
        return not self.terms

    def constant_value(self) -> int:
        """The integer value of a constant form.

        Raises:
            NonAffineError: if the form still has variable terms.
        """
        if self.terms:
            raise NonAffineError(f"{self} is not a constant")
        return self.const

    def depends_on(self, names: Iterable[str]) -> bool:
        """True when any of ``names`` appears with non-zero coefficient."""
        mine = self.names
        return any(n in mine for n in names)

    # ------------------------------------------------------------------
    # Arithmetic (returns new canonical forms)
    # ------------------------------------------------------------------
    def _coeff_dict(self) -> dict[str, int]:
        return dict(self.terms)

    def __add__(self, other: "Affine | int") -> "Affine":
        other = as_affine(other)
        coeffs = self._coeff_dict()
        for n, c in other.terms:
            coeffs[n] = coeffs.get(n, 0) + c
        return Affine.build(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine.build({n: -c for n, c in self.terms}, -self.const)

    def __sub__(self, other: "Affine | int") -> "Affine":
        return self + (-as_affine(other))

    def __rsub__(self, other: "Affine | int") -> "Affine":
        return as_affine(other) + (-self)

    def __mul__(self, k: int) -> "Affine":
        if isinstance(k, Affine):
            if k.is_constant():
                k = k.const
            elif self.is_constant():
                self, k = k, self.const
            else:
                raise NonAffineError(f"product of {self} and {k} is not affine")
        return Affine.build({n: c * k for n, c in self.terms}, self.const * k)

    __rmul__ = __mul__

    def substitute(self, name: str, replacement: "Affine | int") -> "Affine":
        """Replace every occurrence of ``name`` with ``replacement``."""
        c = self.coeff(name)
        if c == 0:
            return self
        coeffs = self._coeff_dict()
        del coeffs[name]
        return Affine.build(coeffs, self.const) + as_affine(replacement) * c

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        """Rename variables; names absent from ``mapping`` are kept."""
        coeffs: dict[str, int] = {}
        for n, c in self.terms:
            new = mapping.get(n, n)
            coeffs[new] = coeffs.get(new, 0) + c
        return Affine.build(coeffs, self.const)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full binding of every variable in the form.

        Raises:
            NonAffineError: if a variable is unbound.
        """
        total = self.const
        for n, c in self.terms:
            if n not in env:
                raise NonAffineError(f"unbound variable {n!r} in {self}")
            total += c * int(env[n])
        return total

    def partial_evaluate(self, env: Mapping[str, int]) -> "Affine":
        """Substitute the bindings present in ``env``, leaving the rest."""
        result = self
        for n in list(result.names):
            if n in env:
                result = result.substitute(n, int(env[n]))
        return result

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for n, c in self.terms:
            if c == 1:
                term = n
            elif c == -1:
                term = f"-{n}"
            else:
                term = f"{c}*{n}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self.const or not parts:
            if parts and self.const >= 0:
                parts.append(f"+{self.const}")
            else:
                parts.append(str(self.const))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Affine({self})"


def as_affine(value: "Affine | int | str") -> Affine:
    """Coerce ``value`` to an :class:`Affine`.

    ints become constants, strings become single variables, and affine
    forms pass through unchanged.
    """
    if isinstance(value, Affine):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise NonAffineError("booleans are not affine values")
    if isinstance(value, int):
        return Affine.constant(value)
    if isinstance(value, str):
        if value.isidentifier():
            return Affine.var(value)
        return Affine.parse(value)
    raise NonAffineError(f"cannot interpret {value!r} as an affine form")
