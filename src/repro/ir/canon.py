"""Canonicalization: one stable content key per semantic loop nest.

The compile server caches results content-addressed on the *meaning* of
a nest, not its spelling: two requests whose programs differ only by
loop-variable names, declaration order, or the program-name token must
share one cache entry (and therefore one compile). This module defines
that equivalence:

* loop index variables are alpha-renamed, in first-occurrence order of a
  pre-order walk of the body, to ``I0, I1, ...`` (collision-guarded
  against declared arrays and parameters);
* array declarations are sorted by name (the analytic predictor and the
  transforms are declaration-order independent; the canonical order
  *defines* the service's address-layout tie-break);
* the program name is normalized to ``NEST`` — parameters keep their
  names and values, because they change trip counts and footprints.

:func:`canonical_text` is the round-trippable pretty text of that
canonical form and :func:`content_digest` its SHA-256 key. The oracle
layer's ``canonical_key`` (exact pretty text) remains the right key for
*intra-process* memoization where renames are impossible; this module is
the stricter cross-request key.
"""

from __future__ import annotations

import hashlib

from repro.ir.nodes import Assign, Loop, Program
from repro.ir.pretty import pretty_program
from repro.ir.visit import rename_loops

__all__ = [
    "CANONICAL_NAME",
    "canonical_program",
    "canonical_text",
    "content_digest",
]

#: Every canonical program carries this name token.
CANONICAL_NAME = "NEST"


def _loop_vars_preorder(program: Program) -> list[str]:
    """Loop index variables in first-occurrence (pre-order) order."""
    seen: list[str] = []

    def walk(node: "Loop | Assign") -> None:
        if isinstance(node, Assign):
            return
        if node.var not in seen:
            seen.append(node.var)
        for child in node.body:
            walk(child)

    for node in program.body:
        walk(node)
    return seen


def _canonical_rename(program: Program) -> dict[str, str]:
    """Old loop var -> canonical name, avoiding arrays and parameters."""
    reserved = {decl.name for decl in program.arrays}
    reserved.update(name for name, _ in program.params)
    mapping: dict[str, str] = {}
    counter = 0
    for var in _loop_vars_preorder(program):
        while True:
            candidate = f"I{counter}"
            counter += 1
            if candidate not in reserved:
                break
        mapping[var] = candidate
    return mapping


def canonical_program(program: Program) -> tuple[Program, dict[str, str]]:
    """The canonical form of ``program`` plus the applied rename map.

    Returns ``(canonical, mapping)`` where ``mapping`` maps each original
    loop variable to its canonical name (``{"J": "I0", ...}``); clients
    that want their own spelling back invert it over the response.
    Statement sids are renumbered in canonical body order, so structural
    caches built over the canonical form are deterministic too.
    """
    mapping = _canonical_rename(program)
    body = tuple(rename_loops(node, mapping) for node in program.body)
    arrays = tuple(sorted(program.arrays, key=lambda decl: decl.name))
    canonical = Program(
        CANONICAL_NAME, program.params, arrays, body
    ).renumbered()
    return canonical, mapping


def canonical_text(program: Program) -> str:
    """Round-trippable pretty text of the canonical form."""
    canonical, _ = canonical_program(program)
    return pretty_program(canonical)


def content_digest(program: Program) -> str:
    """Stable hex content key of the nest's canonical form (16 chars)."""
    return hashlib.sha256(canonical_text(program).encode()).hexdigest()[:16]
