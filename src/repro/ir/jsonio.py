"""JSON IR: a structured wire encoding of mini-Fortran programs.

The compile server accepts either raw mini-Fortran ``source`` text or a
``"ir"`` JSON object; this module defines that object and converts both
ways. The shape mirrors :class:`repro.ir.nodes.Program` with expression
*leaves as strings* (the frontend's expression grammar), so builders in
other languages never have to emit a full expression AST::

    {
      "name": "demo",
      "params": {"N": 64},
      "arrays": [{"name": "A", "shape": ["N", "N"], "elem_size": 8}],
      "body": [
        {"loop": {"var": "I", "lb": "1", "ub": "N", "step": 1, "body": [
          {"assign": {"lhs": "A(I, I)", "rhs": "A(I, I) + 1"}}
        ]}}
      ]
    }

Decoding lowers the object to mini-Fortran text deterministically and
reuses the battle-tested frontend parser, so JSON IR and source input
agree on every corner of the grammar by construction. Structural
problems (wrong types, missing keys) raise :class:`IRError` naming the
offending JSON path; expression-level problems surface the frontend's
message for the specific fragment.
"""

from __future__ import annotations

from typing import Any

from repro.errors import IRError, ParseError
from repro.ir.nodes import Assign, Loop, Program

__all__ = ["program_from_json", "program_to_json"]


def _expect(value: Any, types: tuple, path: str, what: str) -> Any:
    if not isinstance(value, types):
        raise IRError(
            f"JSON IR: {path} must be {what}, got {type(value).__name__}"
        )
    return value


def _expr_text(value: Any, path: str) -> str:
    """An expression leaf: a string in the frontend grammar, or a number."""
    if isinstance(value, bool) or value is None:
        raise IRError(f"JSON IR: {path} must be an expression string or number")
    if isinstance(value, (int, float)):
        return repr(value)
    text = _expect(value, (str,), path, "an expression string or number").strip()
    if not text:
        raise IRError(f"JSON IR: {path} must not be empty")
    if "\n" in text:
        raise IRError(f"JSON IR: {path} must be a single-line expression")
    return text


def _emit_node(node: Any, path: str, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    _expect(node, (dict,), path, "an object")
    keys = set(node)
    if keys == {"loop"}:
        loop = _expect(node["loop"], (dict,), f"{path}.loop", "an object")
        unknown = set(loop) - {"var", "lb", "ub", "step", "body"}
        if unknown:
            raise IRError(
                f"JSON IR: {path}.loop has unknown key(s) {sorted(unknown)}"
            )
        var = _expect(loop.get("var"), (str,), f"{path}.loop.var", "a string")
        if not var.isidentifier():
            raise IRError(f"JSON IR: {path}.loop.var must be an identifier")
        lb = _expr_text(loop.get("lb"), f"{path}.loop.lb")
        ub = _expr_text(loop.get("ub"), f"{path}.loop.ub")
        step = loop.get("step", 1)
        if isinstance(step, bool) or not isinstance(step, int):
            raise IRError(f"JSON IR: {path}.loop.step must be an integer")
        header = f"{pad}DO {var} = {lb}, {ub}"
        if step != 1:
            header += f", {step}"
        lines.append(header)
        body = _expect(loop.get("body"), (list,), f"{path}.loop.body", "a list")
        if not body:
            raise IRError(f"JSON IR: {path}.loop.body must not be empty")
        for index, child in enumerate(body):
            _emit_node(child, f"{path}.loop.body[{index}]", lines, depth + 1)
        lines.append(f"{pad}ENDDO")
    elif keys == {"assign"}:
        assign = _expect(node["assign"], (dict,), f"{path}.assign", "an object")
        unknown = set(assign) - {"lhs", "rhs"}
        if unknown:
            raise IRError(
                f"JSON IR: {path}.assign has unknown key(s) {sorted(unknown)}"
            )
        lhs = _expr_text(assign.get("lhs"), f"{path}.assign.lhs")
        rhs = _expr_text(assign.get("rhs"), f"{path}.assign.rhs")
        lines.append(f"{pad}{lhs} = {rhs}")
    else:
        raise IRError(
            f"JSON IR: {path} must be an object with exactly one of "
            f"'loop' or 'assign', got keys {sorted(keys)}"
        )


def program_from_json(payload: Any) -> Program:
    """Decode a JSON IR object into a :class:`Program`.

    Raises :class:`IRError` on structural problems (path included) and
    on expression fragments the frontend grammar rejects.
    """
    from repro.frontend import parse_program

    _expect(payload, (dict,), "ir", "an object")
    unknown = set(payload) - {"name", "params", "arrays", "body"}
    if unknown:
        raise IRError(f"JSON IR: unknown top-level key(s) {sorted(unknown)}")
    name = payload.get("name", "json_ir")
    _expect(name, (str,), "ir.name", "a string")
    if not name.isidentifier():
        raise IRError("JSON IR: ir.name must be an identifier")

    lines = [f"PROGRAM {name}"]
    params = payload.get("params", {})
    _expect(params, (dict,), "ir.params", "an object")
    for key in sorted(params):
        value = params[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise IRError(f"JSON IR: ir.params[{key!r}] must be an integer")
        if not isinstance(key, str) or not key.isidentifier():
            raise IRError(f"JSON IR: parameter name {key!r} must be an identifier")
        lines.append(f"PARAMETER {key} = {value}")

    arrays = payload.get("arrays", [])
    _expect(arrays, (list,), "ir.arrays", "a list")
    for index, decl in enumerate(arrays):
        path = f"ir.arrays[{index}]"
        _expect(decl, (dict,), path, "an object")
        unknown = set(decl) - {"name", "shape", "elem_size"}
        if unknown:
            raise IRError(f"JSON IR: {path} has unknown key(s) {sorted(unknown)}")
        decl_name = _expect(decl.get("name"), (str,), f"{path}.name", "a string")
        if not decl_name.isidentifier():
            raise IRError(f"JSON IR: {path}.name must be an identifier")
        shape = _expect(decl.get("shape", []), (list,), f"{path}.shape", "a list")
        if "elem_size" in decl:
            # The wire shape carries elem_size for round-trip fidelity,
            # but the frontend declares REAL*8 only — reject silently
            # narrowing a request instead of mis-modelling its layout.
            size = decl["elem_size"]
            if isinstance(size, bool) or not isinstance(size, int) or size != 8:
                raise IRError(
                    f"JSON IR: {path}.elem_size must be 8 (REAL*8 layout)"
                )
        if shape:
            dims = ", ".join(
                _expr_text(extent, f"{path}.shape[{i}]")
                for i, extent in enumerate(shape)
            )
            lines.append(f"REAL {decl_name}({dims})")
        else:
            lines.append(f"REAL {decl_name}")

    body = _expect(payload.get("body"), (list,), "ir.body", "a list")
    if not body:
        raise IRError("JSON IR: ir.body must not be empty")
    for index, node in enumerate(body):
        _emit_node(node, f"ir.body[{index}]", lines, 0)
    lines.append("END")

    source = "\n".join(lines)
    try:
        return parse_program(source)
    except ParseError as exc:
        # The caret points into the generated lowering, not user text —
        # surface the message plus the offending generated line instead.
        context = ""
        if 0 < exc.line <= len(lines):
            context = f" (in {lines[exc.line - 1].strip()!r})"
        raise IRError(f"JSON IR: {exc.message}{context}") from exc


def _node_to_json(node: "Loop | Assign") -> dict:
    if isinstance(node, Assign):
        return {"assign": {"lhs": str(node.lhs), "rhs": str(node.rhs)}}
    payload: dict = {
        "var": node.var,
        "lb": str(node.lb),
        "ub": str(node.ub),
    }
    if node.step != 1:
        payload["step"] = node.step
    payload["body"] = [_node_to_json(child) for child in node.body]
    return {"loop": payload}


def program_to_json(program: Program) -> dict:
    """Encode a :class:`Program` as the JSON IR object (round-trips)."""
    return {
        "name": program.name,
        "params": {name: value for name, value in program.params},
        "arrays": [
            {
                "name": decl.name,
                "shape": [str(extent) for extent in decl.shape],
                "elem_size": decl.elem_size,
            }
            for decl in program.arrays
        ],
        "body": [_node_to_json(node) for node in program.body],
    }
