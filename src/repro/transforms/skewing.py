"""Loop skewing (§2/§4.2 context).

Skewing remaps an inner loop ``J`` to ``J' = J + f*I`` for an enclosing
loop ``I``. It never changes execution order (iterations map one-to-one
in the same lexicographic order), so it is always legal; its value is as
an *enabler*: it makes dependence components non-negative so that a
subsequent interchange (or tiling) becomes legal.

The paper implemented skewing but found — like Wolf & Lam — that it was
never needed for locality on the benchmark suite, and excluded it from
Compound. We do the same: skewing is provided and tested, and Compound
does not call it.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import Affine
from repro.ir.nodes import Assign, Loop
from repro.ir.visit import map_statements, substitute_expr

__all__ = ["skew_loop"]


def skew_loop(outer: Loop, inner_var: str, factor: int) -> Loop:
    """Skew the loop named ``inner_var`` by ``factor`` w.r.t. ``outer``.

    ``DO I / DO J = lb, ub`` becomes ``DO I / DO J' = lb+f*I, ub+f*I``
    with every subscript occurrence of ``J`` rewritten to ``J' - f*I``.
    The loop variable keeps its name (the new index ranges differently).

    Raises:
        TransformError: when ``inner_var`` is not an immediate perfect
            descendant of ``outer`` or has a non-unit step.
    """
    if factor == 0:
        return outer

    def rebuild(node: "Loop | Assign") -> "Loop | Assign":
        if isinstance(node, Assign):
            return node
        if node.var != inner_var:
            return node.with_body([rebuild(child) for child in node.body])
        if node.step != 1:
            raise TransformError(
                f"cannot skew loop {inner_var} with step {node.step}"
            )
        shift = Affine.var(outer.var) * factor
        replacement = Affine.var(inner_var) - shift

        def fix(stmt: Assign) -> Assign:
            return Assign(
                stmt.lhs.substitute(inner_var, replacement),
                substitute_expr(stmt.rhs, inner_var, replacement),
                stmt.sid,
            )

        new_body = tuple(
            map_statements(child, fix) for child in node.body
        )
        return Loop(inner_var, node.lb + shift, node.ub + shift, 1, new_body)

    found = any(loop.var == inner_var for loop in _descendants(outer))
    if not found:
        raise TransformError(f"loop {inner_var} not nested in {outer.var}")
    return rebuild(outer)


def _descendants(loop: Loop):
    for item in loop.body:
        if isinstance(item, Loop):
            yield item
            yield from _descendants(item)
