"""Compound: the integrated transformation driver (paper §4.5, Figure 6).

For each loop nest: compute memory order; try permutation; if the nest is
imperfect, try fusing all inner loops to enable permutation; failing
that, try distribution (then re-fuse the pieces to recover temporal
locality). Finally, fuse adjacent compatible nests when the cost model
reports a locality benefit.

The driver also produces the per-nest bookkeeping behind Table 2:
memory-order status (original / permuted / failed), inner-loop status,
fusion candidate/actual counts, and distribution counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import iter_loops
from repro.model.loopcost import CostModel
from repro.model.oracle import AnalyticOracle, CostOracle
from repro.obs import get_obs
from repro.transforms.distribution import DistributeOutcome, distribute_nest
from repro.transforms.fusion import fuse_adjacent, fuse_all
from repro.transforms.permute import permute_nest

__all__ = ["NestReport", "CompoundOutcome", "compound", "optimize_nest"]

ORIG = "orig"
PERM = "perm"
FAIL = "fail"


@dataclass(frozen=True)
class NestReport:
    """Table-2 bookkeeping for one analyzed nest (depth >= 2)."""

    nest_index: int
    depth: int
    loop_count: int
    status: str  # ORIG / PERM / FAIL for whole-nest memory order
    inner_status: str  # same for the innermost-loop position
    fusion_enabled_permutation: bool = False
    distributed: bool = False
    nests_created: int = 0
    reversal_used: bool = False
    failure_reason: str | None = None


@dataclass
class CompoundOutcome:
    """Result of running Compound over a whole program."""

    program: Program
    nests: list[NestReport] = field(default_factory=list)
    fusion_candidates: int = 0
    nests_fused: int = 0
    distribution_applied: int = 0
    distribution_resulting: int = 0

    @property
    def counts(self) -> dict[str, int]:
        out = {ORIG: 0, PERM: 0, FAIL: 0}
        for report in self.nests:
            out[report.status] += 1
        return out

    @property
    def inner_counts(self) -> dict[str, int]:
        out = {ORIG: 0, PERM: 0, FAIL: 0}
        for report in self.nests:
            out[report.inner_status] += 1
        return out


def compound(
    program: Program,
    model: CostModel | None = None,
    cache_capacity: "tuple[int, int] | None" = None,
    oracle: CostOracle | None = None,
) -> CompoundOutcome:
    """Apply the compound transformation algorithm to a program.

    ``cache_capacity`` — optional ``(cache_bytes, line_bytes)`` — enables
    the §5.5 capacity veto on the final fusion pass: fusions whose merged
    innermost working set overflows the cache are skipped. The paper's
    own algorithm has no such check (and occasionally lost hit rate for
    it); pass None to reproduce the paper's behaviour.

    ``oracle`` — the :class:`~repro.model.oracle.CostOracle` the driver
    consults for desired loop orders. The default wraps ``model`` in an
    :class:`~repro.model.oracle.AnalyticOracle`, whose ``memory_order``
    delegates straight back to the paper's LoopCost ranking, so passing
    neither argument reproduces the paper's decisions exactly.
    """
    if oracle is None:
        oracle = AnalyticOracle(model=model or CostModel())
    model = oracle.model
    obs = get_obs()
    outcome = CompoundOutcome(program)
    used_names = {loop.var for loop in iter_loops(program)}

    with obs.span("compound", program=program.name):
        new_body: list[Loop | Assign] = []
        nest_index = 0
        for item in program.body:
            if not isinstance(item, Loop) or item.depth < 2:
                new_body.append(item)
                continue
            with obs.span("compound.nest", nest=nest_index, var=item.var):
                nodes, report, dist = optimize_nest(
                    item, model, used_names, nest_index, oracle=oracle
                )
            new_body.extend(nodes)
            outcome.nests.append(report)
            if dist is not None:
                outcome.distribution_applied += 1
                outcome.distribution_resulting += dist.new_nests
            if obs.enabled:
                _nest_remark(obs, item, report)
            nest_index += 1

        # Final pass: fuse adjacent compatible nests for temporal locality.
        with obs.span("compound.fuse_adjacent"):
            fused = fuse_adjacent(
                tuple(new_body),
                model,
                cache_capacity=cache_capacity,
                param_env=program.param_env,
            )
        outcome.fusion_candidates += fused.candidates
        outcome.nests_fused += fused.fused
        outcome.program = program.with_body(fused.items)
        if obs.enabled:
            obs.remark(
                "compound",
                "analysis",
                f"fused {fused.fused} of {fused.candidates} candidate nests",
                candidates=fused.candidates,
                fused=fused.fused,
            )
    return outcome


def _nest_remark(obs, nest: Loop, report: NestReport) -> None:
    """Per-nest driver summary remark (the --explain backbone)."""
    if report.status == FAIL:
        kind = "rejected"
    elif (
        report.status == PERM
        or report.inner_status == PERM
        or report.distributed
        or report.fusion_enabled_permutation
    ):
        kind = "applied"
    else:
        kind = "analysis"
    message = (
        f"memory order {report.status}, inner loop {report.inner_status}"
    )
    if report.fusion_enabled_permutation:
        message += ", fusion enabled permutation"
    if report.distributed:
        message += f", distributed into {report.nests_created} nests"
    if report.reversal_used:
        message += ", reversal used"
    loop_vars = tuple(loop.var for loop in iter_loops(nest))
    obs.remark(
        "compound",
        kind,
        message,
        nest=report.nest_index,
        loops=loop_vars,
        reason=report.failure_reason,
        depth=report.depth,
    )
    obs.metrics.counter(f"compound.nest.{report.status}").inc()
    obs.metrics.counter("compound.nests").inc()


def optimize_nest(
    nest: Loop,
    model: CostModel,
    used_names: set[str],
    nest_index: int = 0,
    oracle: CostOracle | None = None,
) -> tuple[tuple["Loop | Assign", ...], NestReport, DistributeOutcome | None]:
    """Optimize one nest; returns replacement nodes, report, distribution."""
    if oracle is None:
        oracle = AnalyticOracle(model=model)
    depth = nest.depth
    loop_count = sum(1 for _ in iter_loops(nest))

    # --- Perfect (or effectively perfect) nest: straight permutation. ---
    chain = nest.perfect_nest_loops()
    if len(chain) == depth:
        res = permute_nest(nest, model)
        report = NestReport(
            nest_index,
            depth,
            loop_count,
            status=_status(res.originally_in_memory_order, res.achieved_memory_order),
            inner_status=_inner_status(res),
            reversal_used=bool(res.reversed_loops),
            failure_reason=res.failure,
        )
        return (res.loop,), report, None

    # --- Imperfect nest. Already in memory order? ---------------------
    desired = tuple(oracle.memory_order(nest))
    preorder = tuple(loop.var for loop in iter_loops(nest))
    if desired == preorder:
        report = NestReport(
            nest_index, depth, loop_count, status=ORIG, inner_status=ORIG
        )
        return (nest,), report, None

    inner_orig = _inner_vars(nest) == {desired[-1]}

    # --- Fusion of all inner loops to enable permutation (§4.3.2). ----
    fused_perfect = fuse_all(nest)
    if fused_perfect is not None and fused_perfect.is_perfect_nest():
        res = permute_nest(fused_perfect, model)
        if res.applied and res.achieved_memory_order:
            report = NestReport(
                nest_index,
                depth,
                loop_count,
                status=PERM,
                inner_status=ORIG if inner_orig else PERM,
                fusion_enabled_permutation=True,
                reversal_used=bool(res.reversed_loops),
            )
            return (res.loop,), report, None

    # --- Distribution (§4.4), then re-fusion of the pieces. -----------
    dist = distribute_nest(nest, model, used_names=set(used_names))
    if dist is not None:
        used_names.update(
            loop.var for node in dist.nodes if isinstance(node, Loop)
            for loop in iter_loops(node)
        )
        nodes = _refuse_inner(dist.nodes, model)
        deep = [r for r in dist.permutations]
        all_mem = bool(deep) and all(
            r.achieved_memory_order or r.originally_in_memory_order for r in deep
        )
        any_inner = any(r.inner_in_memory_position for r in deep)
        report = NestReport(
            nest_index,
            depth,
            loop_count,
            status=PERM if all_mem else FAIL,
            inner_status=(
                ORIG if inner_orig else (PERM if (all_mem or any_inner) else FAIL)
            ),
            distributed=True,
            nests_created=dist.new_nests,
            failure_reason=None if all_mem else "dependences",
        )
        return nodes, report, dist

    # --- Last resort: permute maximal perfect sub-nests in place. -----
    rebuilt, improved_inner = _permute_subnests(nest, model, ())
    final_inner = _inner_vars(rebuilt) == {desired[-1]}
    report = NestReport(
        nest_index,
        depth,
        loop_count,
        status=FAIL,
        inner_status=(
            ORIG if inner_orig else (PERM if final_inner else FAIL)
        ),
        failure_reason="dependences",
    )
    return (rebuilt,), report, None


def _status(originally: bool, achieved: bool) -> str:
    if originally:
        return ORIG
    return PERM if achieved else FAIL


def _inner_status(res) -> str:
    if res.originally_in_memory_order:
        return ORIG
    if res.original and res.desired and res.original[-1] == res.desired[-1]:
        return ORIG
    return PERM if res.inner_in_memory_position else FAIL


def _inner_vars(nest: Loop) -> set[str]:
    """Vars of the innermost loop on every path of the nest."""
    out: set[str] = set()

    def walk(loop: Loop) -> None:
        inner = [item for item in loop.body if isinstance(item, Loop)]
        if not inner:
            out.add(loop.var)
            return
        for item in inner:
            walk(item)

    walk(nest)
    return out


def _refuse_inner(
    nodes: tuple["Loop | Assign", ...], model: CostModel
) -> tuple["Loop | Assign", ...]:
    """Re-fuse adjacent loops created by distribution (Compound's Fuse(l))."""

    def rebuild(loop: Loop) -> Loop:
        body = tuple(
            rebuild(item) if isinstance(item, Loop) else item for item in loop.body
        )
        fused = fuse_adjacent(body, model)
        return loop.with_body(fused.items)

    out: list[Loop | Assign] = []
    for node in nodes:
        out.append(rebuild(node) if isinstance(node, Loop) else node)
    result = fuse_adjacent(tuple(out), model)
    return result.items


def _permute_subnests(
    nest: Loop, model: CostModel, outer: tuple[Loop, ...]
) -> tuple[Loop, bool]:
    """Permute each maximal perfect sub-nest of an unpermutable nest."""
    improved = False
    chain = nest.perfect_nest_loops()
    if len(chain) >= 2:
        res = permute_nest(nest, model, outer_loops=outer)
        if res.applied:
            return res.loop, res.inner_in_memory_position
        return nest, False

    new_body: list[Loop | Assign] = []
    for item in nest.body:
        if isinstance(item, Loop):
            rebuilt, sub = _permute_subnests(item, model, outer + (nest,))
            new_body.append(rebuilt)
            improved = improved or sub
        else:
            new_body.append(item)
    return nest.with_body(new_body), improved
