"""Loop fusion (paper §4.3, Figure 4).

Fusion serves two purposes: improving group-temporal locality between
adjacent compatible nests, and merging all inner loops of an imperfect
nest into a perfect one so permutation can proceed (§4.3.2).

The greedy algorithm partitions adjacent candidate nests into sets with
compatible headers (deepest compatibility first), builds the dependence
DAG between nests, and fuses a pair when the cost model reports a
locality benefit and fusion is legal:

* no dependence path between the two nests through a third, unfused nest;
* no fusion-preventing dependence — a cross-nest dependence that would
  run backwards (lexicographically negative) in the fused loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dependence.pairs import region_dependences
from repro.dependence.tests import analyze_ref_pair
from repro.ir.nodes import Assign, Loop, Program
from repro.ir.visit import (
    enclosing_loops,
    fresh_name,
    iter_loops,
    iter_statements,
    rename_loops,
)
from repro.model.loopcost import CostModel
from repro.obs import get_obs

__all__ = ["FusionOutcome", "fuse_adjacent", "fuse_all", "compatible_depth", "fuse_pair"]


# ----------------------------------------------------------------------
# Compatibility
# ----------------------------------------------------------------------
def compatible_depth(l1: Loop, l2: Loop) -> int:
    """Depth to which two nests have compatible, perfectly nested headers.

    Headers are compatible when bounds and step are identical after
    renaming l2's outer indices to l1's (the paper's "same number of
    iterations", realized as same ranges so no alignment is needed).
    """
    depth = 0
    mapping: dict[str, str] = {}
    a, b = l1, l2
    while True:
        lb2 = b.lb.rename(mapping)
        ub2 = b.ub.rename(mapping)
        if not (a.lb == lb2 and a.ub == ub2 and a.step == b.step):
            return depth
        depth += 1
        mapping[b.var] = a.var
        if (
            len(a.body) == 1
            and isinstance(a.body[0], Loop)
            and len(b.body) == 1
            and isinstance(b.body[0], Loop)
        ):
            a, b = a.body[0], b.body[0]
            continue
        return depth


def fuse_pair(l1: Loop, l2: Loop, depth: int) -> Loop:
    """Fuse two nests at ``depth`` compatible levels (headers from l1)."""
    mapping: dict[str, str] = {}
    a, b = l1, l2
    for _ in range(depth):
        mapping[b.var] = a.var
        if a.body and isinstance(a.body[0], Loop) and len(a.body) == 1:
            if b.body and isinstance(b.body[0], Loop) and len(b.body) == 1:
                a, b = a.body[0], b.body[0]

    renamed = rename_loops(l2, mapping)

    def merge(x: Loop, y: Loop, levels: int) -> Loop:
        if levels == 1:
            return x.with_body(tuple(x.body) + tuple(y.body))
        return x.with_body((merge(x.body[0], y.body[0], levels - 1),))

    return merge(l1, renamed, depth)


# ----------------------------------------------------------------------
# Legality
# ----------------------------------------------------------------------
def fusion_preventing(l1: Loop, l2: Loop, depth: int) -> bool:
    """Would fusing reverse a cross-nest dependence?

    Builds the fused candidate and checks every cross pair of references:
    a feasible dependence vector that is not lexicographically
    non-negative means some instance of the (textually later) second body
    would need to execute before the matching instance of the first —
    fusion is illegal. Leading '*' components (e.g. scalar traffic) are
    conservatively illegal.
    """
    sids1 = {s.sid for s in l1.statements}
    fused = fuse_pair(l1, l2, depth)
    chains = enclosing_loops(fused)
    stmts = {s.sid: s for s in iter_statements(fused)}
    for sid_a, stmt_a in stmts.items():
        for sid_b, stmt_b in stmts.items():
            if (sid_a in sids1) == (sid_b in sids1):
                continue  # same original nest
            if sid_a not in sids1:
                continue  # consider pairs (first nest, second nest) once
            chain_a, chain_b = chains[sid_a], chains[sid_b]
            k = 0
            while (
                k < len(chain_a)
                and k < len(chain_b)
                and chain_a[k] is chain_b[k]
            ):
                k += 1
            for ref_a in stmt_a.refs:
                for ref_b in stmt_b.refs:
                    writes = (ref_a is stmt_a.lhs) or (ref_b is stmt_b.lhs)
                    if not writes or ref_a.array != ref_b.array:
                        continue
                    vectors = analyze_ref_pair(
                        ref_a, ref_b, chain_a[:k], chain_a[k:], chain_b[k:]
                    )
                    if any(not v.is_legal() for v in vectors):
                        return True
    return False


# ----------------------------------------------------------------------
# The greedy driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusionOutcome:
    """Result of fusing an adjacent run of nests."""

    items: tuple["Loop | Assign", ...]
    candidates: int  # nests that had a compatible partner (Table 2's C)
    fused: int  # nests merged away into another (Table 2's A)


def _min_cost(loop: Loop, model: CostModel) -> float:
    costs = model.loop_costs(loop)
    if not costs:
        return 0.0
    return min(c.magnitude() for c in costs.values())


def fusion_benefit(l1: Loop, l2: Loop, depth: int, model: CostModel) -> float:
    """Unfused-minus-fused LoopCost at each version's best inner loop."""
    fused = fuse_pair(l1, l2, depth)
    separate = _min_cost(l1, model) + _min_cost(l2, model)
    return separate - _min_cost(fused, CostModel(cls=model.cls, temporal_max=model.temporal_max))


def fuse_adjacent(
    items: "tuple[Loop | Assign, ...]",
    model: CostModel | None = None,
    require_benefit: bool = True,
    cache_capacity: "tuple[int, int] | None" = None,
    param_env: dict | None = None,
) -> FusionOutcome:
    """Greedily fuse compatible adjacent loops within a body item list.

    Statements between loops act as barriers (they are ordering-relevant
    and cheap to respect). Within each run of adjacent loops, pairs are
    considered deepest-compatibility-first, fusing when legal (and, if
    ``require_benefit``, when the cost model reports a locality gain).

    ``cache_capacity``, when given as ``(cache_bytes, line_bytes)``,
    enables the capacity veto of paper §5.5: a fusion whose merged
    innermost working set cannot fit in the cache is skipped (the paper
    saw fusion lower hit rates on Track/Dnasa7/Wave for exactly this
    reason and called the check out as future work).
    """
    model = model or CostModel()
    out: list[Loop | Assign] = []
    candidates_total = 0
    fused_total = 0
    run: list[Loop] = []

    def flush() -> None:
        nonlocal candidates_total, fused_total
        if len(run) > 1:
            merged, cands, fused = _fuse_run(
                tuple(run), model, require_benefit, cache_capacity, param_env
            )
            out.extend(merged)
            candidates_total += cands
            fused_total += fused
        else:
            out.extend(run)
        run.clear()

    for item in items:
        if isinstance(item, Loop):
            run.append(item)
        else:
            flush()
            out.append(item)
    flush()
    return FusionOutcome(tuple(out), candidates_total, fused_total)


def _fuse_run(
    nests: tuple[Loop, ...],
    model: CostModel,
    require_benefit: bool,
    cache_capacity: "tuple[int, int] | None" = None,
    param_env: dict | None = None,
) -> tuple[list[Loop], int, int]:
    n = len(nests)
    depth = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            depth[i][j] = compatible_depth(nests[i], nests[j])
    candidates = len(
        {
            i
            for i in range(n)
            for j in range(n)
            if i != j and depth[min(i, j)][max(i, j)] > 0
        }
    )

    # Dependence DAG between nests (edges i -> j for i < j).
    edges = _nest_dag(nests)

    # Greedy merge, deepest compatibility first.
    cluster = list(range(n))  # cluster representative per nest

    def find(i: int) -> int:
        while cluster[i] != i:
            i = cluster[i]
        return i

    merged_into: dict[int, list[int]] = {i: [i] for i in range(n)}
    pairs = sorted(
        (
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if depth[i][j] > 0
        ),
        key=lambda p: -depth[p[0]][p[1]],
    )
    fused_count = 0
    current: dict[int, Loop] = {i: nests[i] for i in range(n)}

    obs = get_obs()
    for i, j in pairs:
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        a, b = (ri, rj) if ri < rj else (rj, ri)
        d = compatible_depth(current[a], current[b])
        if d == 0:
            continue
        pair_vars = (current[a].var, current[b].var)
        if require_benefit and fusion_benefit(current[a], current[b], d, model) <= 0:
            if obs.enabled:
                obs.remark(
                    "fusion",
                    "rejected",
                    "fusion rejected: no locality benefit",
                    loops=pair_vars,
                    reason="no-benefit",
                    depth=d,
                )
                obs.metrics.counter("fusion.rejected").inc()
            continue
        if _path_through_others(edges, merged_into, a, b):
            if obs.enabled:
                obs.remark(
                    "fusion",
                    "rejected",
                    "fusion rejected: dependence path through an unfused nest",
                    loops=pair_vars,
                    reason="intervening-path",
                    depth=d,
                )
                obs.metrics.counter("fusion.rejected").inc()
            continue
        if fusion_preventing(current[a], current[b], d):
            if obs.enabled:
                obs.remark(
                    "fusion",
                    "rejected",
                    "fusion rejected: fusion-preventing dependence",
                    loops=pair_vars,
                    reason="fusion-preventing",
                    depth=d,
                )
                obs.metrics.counter("fusion.rejected").inc()
            continue
        if cache_capacity is not None:
            from repro.model.capacity import fits_in_cache

            cache_bytes, line_bytes = cache_capacity
            candidate = fuse_pair(current[a], current[b], d)
            if not fits_in_cache(
                candidate,
                CostModel(cls=model.cls),
                cache_bytes,
                line_bytes,
                env=param_env,
            ):
                if obs.enabled:
                    obs.remark(
                        "fusion",
                        "rejected",
                        "fusion rejected: merged working set overflows cache",
                        loops=pair_vars,
                        reason="capacity",
                        depth=d,
                    )
                    obs.metrics.counter("fusion.rejected").inc()
                continue
        current[a] = fuse_pair(current[a], current[b], d)
        cluster[b] = a
        merged_into[a].extend(merged_into.pop(b))
        del current[b]
        fused_count += 1
        if obs.enabled:
            obs.remark(
                "fusion",
                "applied",
                f"fused nests at depth {d}",
                loops=pair_vars,
                depth=d,
            )
            obs.metrics.counter("fusion.applied").inc()

    ordered = [current[rep] for rep in sorted(current)]
    return ordered, candidates, fused_count


def _nest_dag(nests: tuple[Loop, ...]) -> set[tuple[int, int]]:
    """Ordering edges between nests from cross-nest dependences."""
    container = Program("fusion-region", (), (), tuple(nests))
    nest_of: dict[int, int] = {}
    for idx, nest in enumerate(nests):
        for stmt in nest.statements:
            nest_of[stmt.sid] = idx
    edges: set[tuple[int, int]] = set()
    for dep in region_dependences(container):
        a = nest_of[dep.source.sid]
        b = nest_of[dep.sink.sid]
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return edges


def _path_through_others(
    edges: set[tuple[int, int]],
    merged_into: dict[int, list[int]],
    a: int,
    b: int,
) -> bool:
    """Is there a dependence path a ->* x ->* b through a foreign cluster?

    Fusing a and b with such a path would force x's cluster between them,
    which fusion makes impossible.
    """
    members = set(merged_into[a]) | set(merged_into[b])
    adjacency: dict[int, set[int]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
    # BFS from a's members staying outside the union, looking for b.
    frontier = [
        nxt
        for m in merged_into[a]
        for nxt in adjacency.get(m, ())
        if nxt not in members
    ]
    seen = set(frontier)
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt in set(merged_into[b]):
                return True
            if nxt not in seen and nxt not in members:
                seen.add(nxt)
                frontier.append(nxt)
    return False


# ----------------------------------------------------------------------
# FuseAll: make an imperfect nest perfect (fusion as permutation enabler)
# ----------------------------------------------------------------------
def fuse_all(loop: Loop) -> Loop | None:
    """Fuse all sibling inner loops at every level, ignoring profitability.

    Returns the perfect nest, or None when any level mixes statements with
    loops, has incompatible siblings, or a fusion would be illegal.
    """
    obs = get_obs()
    if all(isinstance(item, Assign) for item in loop.body):
        return loop
    if not all(isinstance(item, Loop) for item in loop.body):
        if obs.enabled:
            obs.remark(
                "fuse-all",
                "rejected",
                "cannot make nest perfect: statements mixed with loops",
                loops=(loop.var,),
                reason="mixed-body",
            )
        return None
    siblings = list(loop.body)
    acc = siblings[0]
    for nxt in siblings[1:]:
        d = compatible_depth(acc, nxt)
        if d == 0:
            if obs.enabled:
                obs.remark(
                    "fuse-all",
                    "rejected",
                    "cannot make nest perfect: incompatible sibling headers",
                    loops=(acc.var, nxt.var),
                    reason="incompatible-headers",
                )
            return None
        if fusion_preventing(acc, nxt, d):
            if obs.enabled:
                obs.remark(
                    "fuse-all",
                    "rejected",
                    "cannot make nest perfect: fusion-preventing dependence",
                    loops=(acc.var, nxt.var),
                    reason="fusion-preventing",
                )
            return None
        acc = fuse_pair(acc, nxt, d)
    inner = fuse_all(acc)
    if inner is None:
        return None
    return loop.with_body((inner,))
