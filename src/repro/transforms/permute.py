"""Permute: achieve memory order on a perfect nest (paper §4.1, §4.2).

The algorithm sorts the nest's loops into memory order when the
corresponding permutation of every dependence vector stays
lexicographically positive. When memory order is illegal, a greedy pass
(from [KM92]) places loops outermost-first, at each position choosing the
most-expensive legally-placeable loop; if a loop cannot be placed, loop
*reversal* is tried as an enabler (§4.2) before falling back to the next
candidate. The greedy order positions the loop carrying the most reuse
innermost whenever any legal permutation can.

Triangular nests get their bounds recomputed by Fourier–Motzkin
elimination (see :mod:`repro.transforms.bounds`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransformError
from repro.ir.nodes import Loop
from repro.model.loopcost import CostModel
from repro.obs import get_obs
from repro.transforms.bounds import permuted_bounds
from repro.transforms.legality import (
    constraining_vectors,
    order_is_legal,
    prefix_is_legal,
)

__all__ = ["PermuteResult", "permute_nest"]


@dataclass(frozen=True)
class PermuteResult:
    """Outcome of :func:`permute_nest`.

    Attributes:
        loop: resulting nest (the original object when nothing changed).
        applied: whether the nest was actually rebuilt.
        order: achieved loop order, outermost first.
        desired: memory order, outermost first.
        original: original loop order.
        achieved_memory_order: achieved == desired.
        inner_in_memory_position: innermost loop is the desired one.
        originally_in_memory_order: the nest was already in memory order.
        reversed_loops: loops that run backwards in the result.
        failure: None, or 'dependences' / 'bounds' when memory order could
            not be achieved (the paper's two failure classes).
    """

    loop: Loop
    applied: bool
    order: tuple[str, ...]
    desired: tuple[str, ...]
    original: tuple[str, ...]
    achieved_memory_order: bool
    inner_in_memory_position: bool
    originally_in_memory_order: bool
    reversed_loops: tuple[str, ...] = ()
    failure: str | None = None


def permute_nest(
    nest_root: Loop,
    model: CostModel | None = None,
    outer_loops: tuple[Loop, ...] = (),
    enable_reversal: bool = True,
) -> PermuteResult:
    """Permute the perfect nest headed by ``nest_root`` into memory order."""
    model = model or CostModel()
    obs = get_obs()
    chain = nest_root.perfect_nest_loops()
    original = tuple(loop.var for loop in chain)
    desired = tuple(model.memory_order(nest_root, outer=tuple(outer_loops)))
    if set(desired) != set(original):
        # Imperfect nest below the perfect chain: rank only chain loops.
        desired = tuple(v for v in desired if v in set(original))

    if desired == original:
        if obs.enabled:
            obs.remark(
                "permute",
                "analysis",
                "already in memory order",
                loops=original,
            )
            obs.metrics.counter("permute.noop").inc()
        return PermuteResult(
            nest_root,
            applied=False,
            order=original,
            desired=desired,
            original=original,
            achieved_memory_order=True,
            inner_in_memory_position=True,
            originally_in_memory_order=True,
        )

    vectors = constraining_vectors(nest_root)
    index_of = {var: i for i, var in enumerate(original)}
    desired_indices = [index_of[v] for v in desired]

    # Fast path: memory order itself is legal (80% of nests in the paper).
    if order_is_legal(vectors, desired_indices):
        chosen, reversed_positions = desired_indices, frozenset()
    else:
        greedy = _greedy_order(vectors, desired_indices, enable_reversal)
        if greedy is None:
            if obs.enabled:
                obs.remark(
                    "permute",
                    "rejected",
                    "memory order unachievable: no legal placement",
                    loops=original,
                    reason="dependences",
                    desired=desired,
                )
                obs.metrics.counter("permute.rejected").inc()
            return PermuteResult(
                nest_root,
                applied=False,
                order=original,
                desired=desired,
                original=original,
                achieved_memory_order=False,
                inner_in_memory_position=original[-1] == desired[-1],
                originally_in_memory_order=False,
                failure="dependences",
            )
        chosen, reversed_positions = greedy

    order = tuple(original[i] for i in chosen)
    reversed_vars = tuple(order[p] for p in sorted(reversed_positions))
    if order == original and not reversed_vars:
        if obs.enabled:
            obs.remark(
                "permute",
                "rejected",
                "no legal reordering improves on the original order",
                loops=original,
                reason="dependences",
                desired=desired,
            )
            obs.metrics.counter("permute.rejected").inc()
        return PermuteResult(
            nest_root,
            applied=False,
            order=original,
            desired=desired,
            original=original,
            achieved_memory_order=False,
            inner_in_memory_position=original[-1] == desired[-1],
            originally_in_memory_order=False,
            failure="dependences",
        )

    try:
        rebuilt = apply_order(chain, order, set(reversed_vars), outer_loops)
    except TransformError:
        if obs.enabled:
            obs.remark(
                "permute",
                "rejected",
                f"cannot recompute bounds for order {'.'.join(order)}",
                loops=original,
                reason="bounds",
                desired=desired,
            )
            obs.metrics.counter("permute.rejected").inc()
        return PermuteResult(
            nest_root,
            applied=False,
            order=original,
            desired=desired,
            original=original,
            achieved_memory_order=False,
            inner_in_memory_position=original[-1] == desired[-1],
            originally_in_memory_order=False,
            failure="bounds",
        )

    if obs.enabled:
        detail = {"order": order, "memory_order": order == desired}
        if reversed_vars:
            detail["reversed"] = reversed_vars
        obs.remark(
            "permute",
            "applied",
            f"reordered {'.'.join(original)} -> {'.'.join(order)}",
            loops=original,
            **detail,
        )
        obs.metrics.counter("permute.applied").inc()
        if reversed_vars:
            obs.metrics.counter("permute.reversals").inc(len(reversed_vars))
    return PermuteResult(
        rebuilt,
        applied=True,
        order=order,
        desired=desired,
        original=original,
        achieved_memory_order=(order == desired),
        inner_in_memory_position=(order[-1] == desired[-1]),
        originally_in_memory_order=False,
        reversed_loops=reversed_vars,
    )


def _greedy_order(
    vectors, desired_indices: list[int], enable_reversal: bool
) -> tuple[list[int], frozenset[int]] | None:
    """Outermost-first greedy placement in memory-order preference."""
    chosen: list[int] = []
    reversed_positions: set[int] = set()
    remaining = list(desired_indices)
    n = len(desired_indices)
    for position in range(n):
        placed = False
        for candidate in remaining:
            trial = chosen + [candidate]
            if prefix_is_legal(vectors, trial, frozenset(reversed_positions)):
                chosen.append(candidate)
                remaining.remove(candidate)
                placed = True
                break
            if enable_reversal:
                trial_rev = frozenset(reversed_positions | {position})
                if prefix_is_legal(vectors, trial, trial_rev):
                    chosen.append(candidate)
                    remaining.remove(candidate)
                    reversed_positions.add(position)
                    placed = True
                    break
        if not placed:
            return None
    return chosen, frozenset(reversed_positions)


def apply_order(
    chain: tuple[Loop, ...],
    order: tuple[str, ...],
    reversed_vars: set[str],
    outer_loops: tuple[Loop, ...] = (),
) -> Loop:
    """Rebuild a perfect nest with loops in ``order``.

    Raises:
        TransformError: when the new bounds cannot be derived (triangular
            coupling too complex, or reversal of a coupled loop).
    """
    by_var = {loop.var: loop for loop in chain}
    if any(var in reversed_vars for var in order):
        coupled_vars = set()
        for loop in chain:
            coupled_vars |= loop.lb.names & set(by_var)
            coupled_vars |= loop.ub.names & set(by_var)
        if coupled_vars & reversed_vars or (
            coupled_vars and reversed_vars
        ):
            raise TransformError("cannot reverse loops in a coupled nest")

    bounds = permuted_bounds(chain, order, outer_loops)
    body = chain[-1].body
    node: tuple[Loop | object, ...] = body
    for var, (lb, ub) in zip(reversed(order), reversed(bounds)):
        template = by_var[var]
        step = template.step
        if var in reversed_vars:
            lb, ub, step = ub, lb, -step
        node = (Loop(var, lb, ub, step, tuple(node)),)
    return node[0]
