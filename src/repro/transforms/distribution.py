"""Loop distribution (paper §4.4, Figure 5).

``Distribute`` splits the body of a loop at level ``j`` into the finest
partitions that keep every recurrence (dependence-graph SCC) intact,
then checks whether some resulting nest can be permuted into (or toward)
memory order. It performs the *smallest* amount of distribution that
enables permutation: levels are tried from ``m-1`` (deepest non-inner
level) outward, stopping at the first success.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.graph import DependenceGraph
from repro.dependence.pairs import region_dependences
from repro.ir.nodes import Assign, Loop
from repro.ir.visit import fresh_name, iter_loops, iter_statements, rename_loops
from repro.model.loopcost import CostModel
from repro.obs import get_obs
from repro.transforms.permute import PermuteResult, permute_nest

__all__ = ["DistributeOutcome", "distribute_nest", "finest_partitions"]


@dataclass(frozen=True)
class DistributeOutcome:
    """A successful distribution.

    ``nodes`` replace the original nest in its parent body (more than one
    node when the outermost level was distributed). ``new_nests`` is the
    number of loop nests that resulted from the split (Table 2's R), and
    ``permutations`` the per-partition permutation results.
    """

    nodes: tuple["Loop | Assign", ...]
    level: int
    new_nests: int
    permutations: tuple[PermuteResult, ...]


def finest_partitions(
    nest_root: Loop, target: Loop, level: int
) -> list[tuple["Loop | Assign", ...]]:
    """Partition ``target.body`` (target at 1-based ``level`` in the nest).

    Builds the statement dependence graph restricted to dependences
    carried at ``level`` or deeper (plus loop-independent ones), lifts it
    to body-item granularity, and returns the item SCCs in topological
    order. Statements in a recurrence stay in one partition.
    """
    deps = [
        d
        for d in region_dependences(nest_root)
        if d.constrains_legality
    ]
    body_sids = {s.sid for s in target.statements}
    deps = [
        d for d in deps if d.source.sid in body_sids and d.sink.sid in body_sids
    ]
    item_of: dict[int, int] = {}
    for idx, item in enumerate(target.body):
        if isinstance(item, Assign):
            item_of[item.sid] = idx
        else:
            for stmt in item.statements:
                item_of[stmt.sid] = idx

    adjacency: dict[int, list[int]] = {i: [] for i in range(len(target.body))}
    for dep in deps:
        carried = dep.carried_level()
        if carried is not None and carried < level:
            continue  # preserved by the intact outer loops
        a, b = item_of[dep.source.sid], item_of[dep.sink.sid]
        if a != b:
            adjacency[a].append(b)
        elif carried is not None:
            adjacency[a].append(a)  # self recurrence, keeps item whole

    from repro.dependence.graph import strongly_connected_components

    sccs = strongly_connected_components(list(range(len(target.body))), adjacency)
    return [tuple(target.body[i] for i in comp) for comp in sccs]


def distribute_nest(
    nest_root: Loop,
    model: CostModel | None = None,
    outer_loops: tuple[Loop, ...] = (),
    used_names: set[str] | None = None,
) -> DistributeOutcome | None:
    """Try to enable memory order via distribution + permutation.

    ``used_names`` supplies every loop-index name already used in the
    enclosing program so duplicated loops get fresh names.
    """
    model = model or CostModel()
    if used_names is None:
        used_names = {l.var for l in iter_loops(nest_root)}
        used_names |= {l.var for l in outer_loops}

    obs = get_obs()
    levels = _loops_by_level(nest_root)
    max_level = max(levels)
    with obs.span("distribute", var=nest_root.var):
        for level in range(max_level - 1 if max_level > 1 else 1, 0, -1):
            for target in levels.get(level, ()):
                outcome = _try_distribute(
                    nest_root, target, level, model, outer_loops, used_names
                )
                if outcome is not None:
                    if obs.enabled:
                        obs.remark(
                            "distribute",
                            "applied",
                            f"distributed at level {outcome.level} into "
                            f"{outcome.new_nests} nests",
                            loops=(target.var,),
                            level=outcome.level,
                            new_nests=outcome.new_nests,
                        )
                        obs.metrics.counter("distribute.applied").inc()
                    return outcome
    if obs.enabled:
        obs.remark(
            "distribute",
            "rejected",
            "no distribution enables memory order",
            loops=(nest_root.var,),
            reason="no-enabling-partition",
        )
        obs.metrics.counter("distribute.rejected").inc()
    return None


def _loops_by_level(nest_root: Loop) -> dict[int, list[Loop]]:
    levels: dict[int, list[Loop]] = {}

    def walk(loop: Loop, level: int) -> None:
        levels.setdefault(level, []).append(loop)
        for item in loop.body:
            if isinstance(item, Loop):
                walk(item, level + 1)

    walk(nest_root, 1)
    return levels


def _try_distribute(
    nest_root: Loop,
    target: Loop,
    level: int,
    model: CostModel,
    outer_loops: tuple[Loop, ...],
    used_names: set[str],
) -> DistributeOutcome | None:
    partitions = finest_partitions(nest_root, target, level)
    if len(partitions) < 2:
        return None

    context = outer_loops + _path_to(nest_root, target)

    copies: list[Loop] = []
    names = set(used_names)
    for idx, partition in enumerate(partitions):
        var = target.var if idx == 0 else fresh_name(target.var, names)
        names.add(var)
        base = target.with_body(partition)
        copies.append(
            base if var == target.var else rename_loops(base, {target.var: var})
        )

    improved = False
    rebuilt: list[Loop] = []
    results: list[PermuteResult] = []
    for copy in copies:
        if len(copy.perfect_nest_loops()) >= 2:
            res = permute_nest(copy, model, outer_loops=context[:-1])
            results.append(res)
            rebuilt.append(res.loop)
            if res.applied and (
                res.achieved_memory_order or res.inner_in_memory_position
            ):
                improved = True
        else:
            rebuilt.append(copy)

    if not improved:
        return None

    nodes = _replace(nest_root, target, tuple(rebuilt))
    return DistributeOutcome(
        nodes=nodes,
        level=level,
        new_nests=len(copies),
        permutations=tuple(results),
    )


def _path_to(nest_root: Loop, target: Loop) -> tuple[Loop, ...]:
    """Enclosing loops of ``target`` within the nest, outermost first,
    ending with ``target`` itself."""

    def walk(loop: Loop, path: tuple[Loop, ...]):
        path = path + (loop,)
        if loop is target:
            return path
        for item in loop.body:
            if isinstance(item, Loop):
                found = walk(item, path)
                if found:
                    return found
        return None

    result = walk(nest_root, ())
    if result is None:
        raise ValueError("target loop not inside nest")
    return result


def _replace(
    nest_root: Loop, target: Loop, replacements: tuple["Loop | Assign", ...]
) -> tuple["Loop | Assign", ...]:
    """Replace ``target`` by ``replacements`` within the nest tree."""
    if nest_root is target:
        return replacements

    def rebuild(loop: Loop) -> Loop:
        new_body: list[Loop | Assign] = []
        for item in loop.body:
            if item is target:
                new_body.extend(replacements)
            elif isinstance(item, Loop):
                new_body.append(rebuild(item))
            else:
                new_body.append(item)
        return loop.with_body(new_body)

    return (rebuild(nest_root),)
