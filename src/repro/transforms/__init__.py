"""Compound loop transformations: permutation, reversal, fusion,
distribution, and the integrated Compound driver (paper §4)."""

from repro.transforms.bounds import permuted_bounds
from repro.transforms.compound import (
    CompoundOutcome,
    NestReport,
    compound,
    optimize_nest,
)
from repro.transforms.distribution import (
    DistributeOutcome,
    distribute_nest,
    finest_partitions,
)
from repro.transforms.fusion import (
    FusionOutcome,
    compatible_depth,
    fuse_adjacent,
    fuse_all,
    fuse_pair,
    fusion_preventing,
)
from repro.transforms.legality import (
    constraining_vectors,
    order_is_legal,
    prefix_is_legal,
)
from repro.transforms.permute import PermuteResult, apply_order, permute_nest
from repro.transforms.scalar_replace import ScalarReplaceResult, scalar_replace_program
from repro.transforms.skewing import skew_loop
from repro.transforms.tiling import TileResult, choose_tile_loops, strip_mine, tile_nest
from repro.transforms.unroll_jam import unroll_and_jam, unroll_and_jam_program

__all__ = [
    "CompoundOutcome",
    "DistributeOutcome",
    "FusionOutcome",
    "NestReport",
    "PermuteResult",
    "apply_order",
    "compatible_depth",
    "compound",
    "constraining_vectors",
    "distribute_nest",
    "finest_partitions",
    "fuse_adjacent",
    "fuse_all",
    "fuse_pair",
    "fusion_preventing",
    "optimize_nest",
    "order_is_legal",
    "permute_nest",
    "permuted_bounds",
    "prefix_is_legal",
    "ScalarReplaceResult",
    "TileResult",
    "choose_tile_loops",
    "scalar_replace_program",
    "skew_loop",
    "strip_mine",
    "tile_nest",
    "unroll_and_jam",
    "unroll_and_jam_program",
]
