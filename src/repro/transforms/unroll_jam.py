"""Unroll-and-jam (register tiling), the paper's framework step 3 [CCK88].

Unrolls an *outer* loop of a perfect nest by a factor and jams the
copies into the innermost body, so that references differing only in the
unrolled index become simultaneously live — scalar replacement can then
keep them in registers. The paper applies it after memory ordering to
recover low-level parallelism (§5.7, Simple) and promote register reuse.

Legality equals interchange legality: jamming moves instances of later
outer iterations ahead of inner-loop iterations, which is exactly the
reordering an interchange of the unrolled band performs. We require the
outer loop's dependences to permit interchange with everything inside
(checked via the nest's dependence vectors), plus unit step, constant
bounds, and a divisible trip count (no cleanup loop generation).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import Affine
from repro.ir.nodes import Assign, Loop
from repro.ir.visit import map_statements, substitute_expr
from repro.transforms.legality import constraining_vectors

__all__ = ["unroll_and_jam", "unroll_and_jam_program"]


def unroll_and_jam(nest_root: Loop, factor: int, check: bool = True) -> Loop:
    """Unroll ``nest_root`` (the outer loop) by ``factor`` and jam.

    ``check=False`` skips the dependence-legality check only (mechanical
    restrictions still raise); the differential verifier uses it to
    force-apply rejected unrolls and measure over-conservatism.

    Raises:
        TransformError: illegal (dependence carried by the outer loop
            whose inner components could run backwards), non-unit step,
            symbolic bounds, or a non-divisible trip count.
    """
    if factor <= 0:
        raise TransformError(f"unroll factor must be positive, got {factor}")
    if factor == 1:
        return nest_root
    if nest_root.step != 1:
        raise TransformError(
            f"cannot unroll-and-jam loop {nest_root.var} with step {nest_root.step}"
        )
    span = nest_root.ub - nest_root.lb
    if not span.is_constant():
        raise TransformError(
            f"cannot unroll-and-jam loop {nest_root.var}: symbolic trip count"
        )
    trip = span.const + 1
    if trip % factor:
        raise TransformError(
            f"loop {nest_root.var}: trip {trip} not divisible by {factor}"
        )
    if not nest_root.is_perfect_nest() or not isinstance(
        nest_root.body[0], Loop
    ):
        raise TransformError("unroll-and-jam needs a perfect nest of depth >= 2")
    # Inner bounds must not depend on the unrolled variable: the jammed
    # copy for iteration i+k would otherwise run under iteration i's
    # bounds, executing a different inner iteration space. (A mechanical
    # restriction, enforced regardless of ``check``.)
    for inner in nest_root.perfect_nest_loops()[1:]:
        if inner.lb.depends_on((nest_root.var,)) or inner.ub.depends_on(
            (nest_root.var,)
        ):
            raise TransformError(
                f"cannot unroll-and-jam {nest_root.var}: bounds of inner "
                f"loop {inner.var} depend on it (triangular nest)"
            )

    # Legality: jamming interleaves outer iterations i..i+factor-1 within
    # the inner loops. Any dependence carried by the outer loop must not
    # run backward in the inner loops: components after a '<' outer
    # component must not be negative ('>' or '*').
    for vec in constraining_vectors(nest_root) if check else ():
        outer = vec[0]
        carried = (isinstance(outer, int) and 0 < outer < factor) or (
            not isinstance(outer, int) and outer in ("<", "*")
        )
        if not carried:
            continue
        for comp in vec.components[1:]:
            if (isinstance(comp, int) and comp < 0) or comp in (">", "*"):
                raise TransformError(
                    f"dependence {vec} prevents unroll-and-jam of "
                    f"{nest_root.var} by {factor}"
                )

    var = nest_root.var

    def jam(node: "Loop | Assign") -> "list[Loop | Assign]":
        if isinstance(node, Loop):
            new_body: list[Loop | Assign] = []
            for child in node.body:
                new_body.extend(jam(child))
            return [node.with_body(new_body)]
        copies = []
        for offset in range(factor):
            replacement = Affine.var(var) + offset
            copy = Assign(
                node.lhs.substitute(var, replacement),
                substitute_expr(node.rhs, var, replacement),
                node.sid if offset == 0 else -1,
            )
            copies.append(copy)
        return copies

    new_inner: list[Loop | Assign] = []
    for child in nest_root.body:
        new_inner.extend(jam(child))
    return Loop(var, nest_root.lb, nest_root.ub, factor, tuple(new_inner))


def unroll_and_jam_program(program, outer_var: str, factor: int):
    """Apply unroll-and-jam to the top-level nest headed by ``outer_var``.

    Statement ids are renumbered program-wide (the jammed copies are new
    statements), so apply this as a terminal transformation — like scalar
    replacement — after Compound's bookkeeping is done.
    """
    new_body = []
    found = False
    for item in program.body:
        if isinstance(item, Loop) and item.var == outer_var:
            new_body.append(unroll_and_jam(item, factor))
            found = True
        else:
            new_body.append(item)
    if not found:
        raise TransformError(f"no top-level loop named {outer_var!r}")
    return program.with_body(new_body).renumbered()
