"""Permutation/reversal legality over dependence vectors.

A loop permutation of a perfect nest is legal when every dependence
vector, with its components reordered accordingly, remains
lexicographically non-negative. ``'*'`` components are conservatively
treated as possibly-negative.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependence.pairs import region_dependences
from repro.dependence.vector import DepVector
from repro.ir.nodes import Loop

__all__ = [
    "constraining_vectors",
    "order_is_legal",
    "prefix_is_legal",
]


def constraining_vectors(nest_root: Loop) -> list[DepVector]:
    """Dependence vectors constraining permutation of the nest.

    Only legality-constraining kinds (flow/anti/output) matter; vectors
    shorter than the nest depth come from statements outside the perfect
    chain and are extended conservatively with '*' — but for a perfect
    nest every statement sits in the innermost body, so all vectors span
    the whole chain. Loop-independent vectors never constrain and are
    dropped.
    """
    depth = len(nest_root.perfect_nest_loops())
    vectors: list[DepVector] = []
    for dep in region_dependences(nest_root):
        if not dep.constrains_legality:
            continue
        vec = dep.vector
        if len(vec) < depth:
            vec = vec.extended(["*"] * (depth - len(vec)))
        if vec.is_loop_independent():
            continue
        vectors.append(vec)
    return vectors


def order_is_legal(
    vectors: Iterable[DepVector],
    old_index_order: Sequence[int],
    reversed_positions: frozenset[int] = frozenset(),
) -> bool:
    """Is the permutation sending position j to old loop index
    ``old_index_order[j]`` legal? ``reversed_positions`` are new positions
    whose loop runs reversed."""
    return all(
        _vector_legal(vec, old_index_order, reversed_positions)
        for vec in vectors
    )


def prefix_is_legal(
    vectors: Iterable[DepVector],
    prefix_old_indices: Sequence[int],
    reversed_positions: frozenset[int] = frozenset(),
) -> bool:
    """Can the partial outer placement be extended to a legal order?

    A prefix is acceptable when no vector is already definitely negative:
    each vector must hit '<' (satisfied), or stay all-zero so far (its
    orientation is decided by inner loops, which can always be completed
    in original relative order).
    """
    for vec in vectors:
        ok = False
        decided = False
        for pos, old_idx in enumerate(prefix_old_indices):
            comp = vec[old_idx]
            if pos in reversed_positions:
                comp = _negate(comp)
            direction = _direction(comp)
            if direction == "<":
                ok, decided = True, True
                break
            if direction in (">", "*"):
                ok, decided = False, True
                break
        if decided and not ok:
            return False
    return True


def _vector_legal(
    vec: DepVector,
    old_index_order: Sequence[int],
    reversed_positions: frozenset[int],
) -> bool:
    for pos, old_idx in enumerate(old_index_order):
        comp = vec[old_idx]
        if pos in reversed_positions:
            comp = _negate(comp)
        direction = _direction(comp)
        if direction == "<":
            return True
        if direction in (">", "*"):
            return False
    return True  # all '=' (loop independent)


def _direction(comp) -> str:
    if isinstance(comp, int):
        return "<" if comp > 0 else (">" if comp < 0 else "=")
    return comp


def _negate(comp):
    if isinstance(comp, int):
        return -comp
    return {"<": ">", ">": "<", "=": "=", "*": "*"}[comp]
