"""Scalar replacement (the paper's framework step 3, after [CCK90]).

References that are invariant with respect to an innermost loop can be
kept in a register for the whole loop: the array element is loaded into
a compiler temporary before the loop, every use inside reads the
temporary, and (if written) the temporary is stored back afterwards.
This removes the redundant per-iteration memory traffic the cost model
prices at "1 cache line" — making it zero lines inside the loop.

The legality test here is deliberately conservative: a reference is
replaced only when every reference to its array inside the loop has
*identical* subscripts, so no aliasing analysis is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import Bin, Call, Const, Expr, Ref, Sym, Var
from repro.ir.nodes import ArrayDecl, Assign, Loop, Program
from repro.ir.visit import fresh_name, iter_loops

__all__ = ["ScalarReplaceResult", "scalar_replace_program"]


@dataclass(frozen=True)
class ScalarReplaceResult:
    program: Program
    replaced: int  # number of array references promoted to scalars


def scalar_replace_program(program: Program) -> ScalarReplaceResult:
    """Promote innermost-loop-invariant references to scalars."""
    used_arrays = {decl.name for decl in program.arrays}
    used_loops = {loop.var for loop in iter_loops(program)}
    used = used_arrays | used_loops
    new_decls: list[ArrayDecl] = []
    replaced = 0

    def rewrite(node: "Loop | Assign") -> "list[Loop | Assign]":
        nonlocal replaced
        if isinstance(node, Assign):
            return [node]
        inner = [item for item in node.body if isinstance(item, Loop)]
        if inner:
            new_body: list[Loop | Assign] = []
            for item in node.body:
                new_body.extend(rewrite(item))
            return [node.with_body(new_body)]

        # Innermost loop: find promotable references.
        stmts = [item for item in node.body if isinstance(item, Assign)]
        candidates = _promotable_refs(stmts, node.var)
        if not candidates:
            return [node]
        pre: list[Assign] = []
        post: list[Assign] = []
        mapping: dict[Ref, Ref] = {}
        for ref, written in candidates:
            temp = fresh_name(f"T_{ref.array}", used)
            used.add(temp)
            new_decls.append(ArrayDecl(temp, ()))
            scalar = Ref(temp, ())
            mapping[ref] = scalar
            pre.append(Assign(scalar, ref))
            if written:
                post.append(Assign(ref, scalar))
            replaced += 1
        new_stmts = [
            Assign(
                mapping.get(stmt.lhs, stmt.lhs),
                _substitute_refs(stmt.rhs, mapping),
                stmt.sid,
            )
            for stmt in stmts
        ]
        return pre + [node.with_body(new_stmts)] + post

    new_body: list[Loop | Assign] = []
    for item in program.body:
        new_body.extend(rewrite(item))

    result = Program(
        program.name,
        program.params,
        program.arrays + tuple(new_decls),
        tuple(new_body),
    )
    # Fresh sids for the inserted load/store statements.
    result = result.renumbered()
    return ScalarReplaceResult(result, replaced)


def _promotable_refs(stmts: list[Assign], loop_var: str) -> list[tuple[Ref, bool]]:
    """Distinct invariant refs safe to promote.

    A reference is promotable when it is invariant with respect to the
    loop and provably disjoint from every *other* reference to the same
    array in the body: two references are provably disjoint when some
    dimension's subscript difference is a non-zero constant. Identical
    occurrences share one scalar.
    """
    by_array: dict[str, list[Ref]] = {}
    written: set[Ref] = set()
    for stmt in stmts:
        for ref in stmt.refs:
            bucket = by_array.setdefault(ref.array, [])
            if ref not in bucket:
                bucket.append(ref)
        written.add(stmt.lhs)

    out = []
    for array, refs in sorted(by_array.items()):
        for ref in refs:
            if ref.rank == 0:
                continue  # already a scalar
            if any(sub.coeff(loop_var) != 0 for sub in ref.subs):
                continue  # varies with the loop
            if all(_provably_disjoint(ref, other) for other in refs if other != ref):
                out.append((ref, ref in written))
    return out


def _provably_disjoint(r1: Ref, r2: Ref) -> bool:
    """Some dimension differs by a non-zero constant: never the same cell."""
    for a, b in zip(r1.subs, r2.subs):
        diff = a - b
        if diff.is_constant() and diff.const != 0:
            return True
    return False


def _substitute_refs(expr: Expr, mapping: dict[Ref, Ref]) -> Expr:
    if isinstance(expr, Ref):
        return mapping.get(expr, expr)
    if isinstance(expr, Bin):
        return Bin(
            expr.op,
            _substitute_refs(expr.left, mapping),
            _substitute_refs(expr.right, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.fn, tuple(_substitute_refs(a, mapping) for a in expr.args))
    return expr
