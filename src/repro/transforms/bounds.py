"""Loop-bound recomputation for permutation of triangular nests.

Permuting rectangular loops keeps every bound unchanged, but triangular
nests (bounds referencing outer loop indices, like Cholesky's
``DO J = K+1, I``) need their bounds re-derived for the new order. This
module implements Fourier–Motzkin elimination over the nest's affine
constraint system, with a dominance filter so each loop keeps a single
affine lower and upper bound.

When a permuted bound genuinely needs ``max``/``min`` of incomparable
forms, or a non-unit coefficient appears, :class:`TransformError` is
raised — the paper reports the same "loop bounds too complex" failure
class (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TransformError
from repro.ir.affine import Affine
from repro.ir.nodes import Loop

__all__ = ["permuted_bounds", "loops_coupled"]


def loops_coupled(loops: Sequence[Loop], order: Sequence[str]) -> bool:
    """Do any bounds reference a loop whose relative order changes?"""
    position = {var: i for i, var in enumerate(order)}
    original = {loop.var: i for i, loop in enumerate(loops)}
    for loop in loops:
        for bound in (loop.lb, loop.ub):
            for name in bound.names:
                if name not in original:
                    continue
                # referenced loop must still be outside `loop` in new order
                if position[name] > position[loop.var]:
                    return True
                if (original[name] < original[loop.var]) != (
                    position[name] < position[loop.var]
                ):
                    return True
    return False


@dataclass(frozen=True)
class _Constraint:
    """``form >= 0`` where form is affine over loop vars and symbols."""

    form: Affine


def permuted_bounds(
    loops: Sequence[Loop],
    order: Sequence[str],
    outer_loops: Sequence[Loop] = (),
) -> list[tuple[Affine, Affine]]:
    """New (lb, ub) per loop of ``order`` preserving the iteration space.

    ``loops`` is the original perfect nest, outermost first; ``order`` the
    new sequence of the same loop vars. ``outer_loops`` are enclosing
    context loops whose indices may appear in bounds (they are treated as
    free symbols with their own ranges for the dominance test).

    Raises:
        TransformError: non-unit steps on coupled loops, or bounds that
            cannot be expressed as a single affine lb/ub pair.
    """
    by_var = {loop.var: loop for loop in loops}
    if sorted(order) != sorted(by_var):
        raise TransformError(f"{order} does not permute {sorted(by_var)}")

    if not loops_coupled(loops, order):
        return [(by_var[v].lb, by_var[v].ub) for v in order]

    for loop in loops:
        if loop.step != 1:
            raise TransformError(
                f"cannot permute coupled loop {loop.var} with step {loop.step}"
            )

    # Constraint system: v - lb >= 0 and ub - v >= 0 for each loop.
    constraints = []
    for loop in loops:
        constraints.append(_Constraint(Affine.var(loop.var) - loop.lb))
        constraints.append(_Constraint(loop.ub - Affine.var(loop.var)))

    # Ordered outer-context first, then the nest loops: the dominance test
    # substitutes innermost-first so correlated terms cancel symbolically.
    bounds_env = list(outer_loops) + list(loops)

    result: list[tuple[Affine, Affine]] = [None] * len(order)  # type: ignore
    remaining = list(constraints)
    for position in range(len(order) - 1, -1, -1):
        var = order[position]
        lowers: list[Affine] = []
        uppers: list[Affine] = []
        others: list[_Constraint] = []
        for con in remaining:
            coeff = con.form.coeff(var)
            if coeff == 0:
                others.append(con)
            elif coeff == 1:
                # var + rest >= 0  =>  var >= -rest
                lowers.append(-(con.form - Affine.var(var)))
            elif coeff == -1:
                # -var + rest >= 0  =>  var <= rest
                uppers.append(con.form + Affine.var(var))
            else:
                raise TransformError(
                    f"non-unit coefficient of {var} in nest bounds"
                )
        if not lowers or not uppers:
            raise TransformError(f"loop {var} has no finite bounds after permutation")
        lb = _select_dominant(lowers, bounds_env, lower=True)
        ub = _select_dominant(uppers, bounds_env, lower=False)
        result[position] = (lb, ub)
        # Eliminate var: each lower/upper pair implies upper - lower >= 0.
        for low in lowers:
            for up in uppers:
                implied = up - low
                if implied.is_constant():
                    if implied.const < 0:
                        # Empty iteration space; keep bounds as derived.
                        continue
                else:
                    others.append(_Constraint(implied))
        remaining = others
    return result


def _select_dominant(
    candidates: list[Affine], bounds_env: list[Loop], lower: bool
) -> Affine:
    """Pick the single binding bound, or raise if incomparable.

    For lower bounds the binding one is the (always-)largest; for upper
    bounds the smallest. ``a`` dominates ``b`` when ``a-b`` has a provable
    sign over the loops' value ranges.
    """
    best = candidates[0]
    for cand in candidates[1:]:
        diff = cand - best
        lo = _extreme_value(diff, bounds_env, maximize=False)
        hi = _extreme_value(diff, bounds_env, maximize=True)
        if lower:
            if lo is not None and lo >= 0:
                best = cand
            elif hi is not None and hi <= 0:
                continue
            else:
                raise TransformError(
                    f"incomparable lower bounds {best} and {cand}"
                )
        else:
            if hi is not None and hi <= 0:
                best = cand
            elif lo is not None and lo >= 0:
                continue
            else:
                raise TransformError(
                    f"incomparable upper bounds {best} and {cand}"
                )
    return best


def _extreme_value(
    form: Affine, bounds_env: list[Loop], maximize: bool
) -> int | None:
    """Extreme of an affine form over loop-variable ranges; None=unknown.

    Loop variables are substituted by their binding bound innermost-first,
    so correlated terms (e.g. ``J - (K+1)`` with ``J >= K+1``) cancel
    symbolically. Any remaining symbols make the extreme unknown.
    """
    for loop in reversed(bounds_env):
        coeff = form.coeff(loop.var)
        if coeff == 0:
            continue
        take_max = (coeff > 0) == maximize
        if loop.step > 0:
            bound = loop.ub if take_max else loop.lb
        else:
            bound = loop.lb if take_max else loop.ub
        form = form.substitute(loop.var, bound)
    return form.const if form.is_constant() else None
