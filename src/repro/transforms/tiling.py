"""Loop tiling (paper §6): strip-mine + permutation for cache reuse.

Memory order maximizes short-term reuse across inner-loop iterations;
tiling captures *long-term* reuse carried by outer loops once the cache
is large enough. Per the paper, the primary profitability criterion is
creating loop-invariant references with respect to the target loop.

This module provides the mechanism and a simple model-driven driver:

* :func:`strip_mine` — split one loop into a tile loop and an element
  loop (requires statically divisible trip counts, the common case for
  the paper's kernels; anything else raises TransformError rather than
  producing ``MIN``-bounded loops the IR cannot express);
* :func:`tile_nest` — strip-mine several loops of a perfect nest and
  hoist the tile loops outward (legal when the tiled band is fully
  permutable);
* :func:`choose_tile_loops` — the §6 criterion: tile the loops that
  carry loop-invariant reuse for some reference group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError
from repro.ir.affine import Affine
from repro.ir.nodes import Loop
from repro.ir.visit import fresh_name, iter_loops
from repro.model.loopcost import CostModel, INVARIANT
from repro.transforms.legality import constraining_vectors

__all__ = ["strip_mine", "tile_nest", "choose_tile_loops", "TileResult"]


def strip_mine(loop: Loop, tile: int, used_names: set[str]) -> Loop:
    """Split ``loop`` into a tile loop enclosing an element loop.

    ``DO I = lb, ub`` becomes ``DO I_t = lb, ub, T / DO I = I_t, I_t+T-1``.

    Raises:
        TransformError: non-unit step, non-constant bounds, or a trip
            count not divisible by ``tile``.
    """
    if tile <= 0:
        raise TransformError(f"tile size must be positive, got {tile}")
    if loop.step != 1:
        raise TransformError(f"cannot strip-mine loop {loop.var} with step {loop.step}")
    span = loop.ub - loop.lb
    if not span.is_constant():
        raise TransformError(
            f"cannot strip-mine loop {loop.var}: symbolic trip count"
        )
    trip = span.const + 1
    if trip % tile:
        raise TransformError(
            f"loop {loop.var}: trip {trip} not divisible by tile {tile}"
        )
    tile_var = fresh_name(f"{loop.var}_T", used_names)
    used_names.add(tile_var)
    element = Loop(
        loop.var,
        Affine.var(tile_var),
        Affine.var(tile_var) + (tile - 1),
        1,
        loop.body,
    )
    return Loop(tile_var, loop.lb, loop.ub, tile, (element,))


@dataclass(frozen=True)
class TileResult:
    loop: Loop
    tiled_vars: tuple[str, ...]
    tile_vars: tuple[str, ...]


def tile_nest(nest_root: Loop, tiles: dict[str, int], check: bool = True) -> TileResult:
    """Tile the named loops of a perfect nest.

    The tile (controlling) loops are hoisted to the top of the nest in
    the original relative order; the element loops stay in place. Tiling
    is legal when the whole nest band is fully permutable — every
    dependence component of the nest's vectors is non-negative — which is
    checked conservatively. ``check=False`` skips the legality check only
    (mechanical restrictions still apply); the differential verifier uses
    it to force-apply rejected tilings and measure over-conservatism.

    Raises:
        TransformError: unknown loop names, illegal band, or strip-mining
            restrictions (see :func:`strip_mine`).
    """
    chain = nest_root.perfect_nest_loops()
    by_var = {loop.var: loop for loop in chain}
    unknown = set(tiles) - set(by_var)
    if unknown:
        raise TransformError(f"loops {sorted(unknown)} not in nest")
    if not tiles:
        return TileResult(nest_root, (), ())

    if check:
        for vec in constraining_vectors(nest_root):
            for comp in vec.components:
                negative = (isinstance(comp, int) and comp < 0) or comp in (">", "*")
                if negative:
                    raise TransformError(
                        f"nest is not fully permutable (vector {vec}); tiling "
                        "would reorder a dependence"
                    )

    used = {loop.var for loop in iter_loops(nest_root)}
    body = chain[-1].body
    tile_loops: list[Loop] = []
    element_loops: list[Loop] = []
    for loop in chain:
        if loop.var in tiles:
            mined = strip_mine(loop, tiles[loop.var], used)
            tile_loops.append(mined)  # element loop is mined.body[0]
            element_loops.append(mined.body[0])
        else:
            element_loops.append(loop)

    node: tuple = body
    for loop in reversed(element_loops):
        node = (loop.with_body(node),)
    for mined in reversed(tile_loops):
        node = (mined.with_body(node),)
    result = node[0]
    return TileResult(
        result,
        tuple(tiles),
        tuple(m.var for m in tile_loops),
    )


def choose_tile_loops(nest_root: Loop, model: CostModel | None = None) -> list[str]:
    """Loops worth tiling per §6: those some reference group is invariant
    with respect to (their reuse is carried across full sweeps of the
    other loops, which tiling turns into cache-resident reuse)."""
    model = model or CostModel()
    info = model.nest_info(nest_root)
    chain = nest_root.perfect_nest_loops()
    candidates = []
    for loop in chain[:-1]:  # the innermost already exploits its reuse
        groups = model.groups(nest_root, loop.var)
        invariant = sum(
            1
            for g in groups
            if model.ref_cost_kind(g.representative.ref, loop) == INVARIANT
            and g.representative.ref.subs  # scalars carry no line reuse
        )
        if invariant:
            candidates.append(loop.var)
    return candidates
