"""Single seeding knob for every randomized test, bench, and fuzz run.

All randomness in the repo derives from one environment variable,
``REPRO_SEED`` (default 0): the verify CLI uses it as the default
``--seed``, the test suite offsets its per-case seed lists by it, and
the pytest harness prints it whenever a test fails so the exact run can
be replayed with ``REPRO_SEED=<n> pytest ...``. Leaving it unset keeps
every run bit-identical to the checked-in baseline.
"""

from __future__ import annotations

import os
import random

__all__ = ["ENV_VAR", "base_seed", "seed_sequence", "derive"]

ENV_VAR = "REPRO_SEED"


def base_seed(default: int = 0) -> int:
    """The run-wide base seed: ``$REPRO_SEED`` or ``default``."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        return int(raw, 0)
    except ValueError:
        raise SystemExit(f"{ENV_VAR} must be an integer, got {raw!r}")


def derive(*components: int | str) -> int:
    """A site-specific seed: the base seed mixed with stable components.

    Distinct call sites pass distinct tags so they never share a stream;
    with ``REPRO_SEED`` unset the result is a fixed function of the tags
    (deterministic baseline).
    """
    h = base_seed()
    for component in components:
        text = str(component)
        # FNV-1a over the tag keeps this stable across processes
        # (unlike hash(), which is salted per interpreter).
        acc = 2166136261
        for byte in text.encode():
            acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
        h = h * 1_000_003 + acc
    return h & 0x7FFFFFFF


def seed_sequence(n: int, *tags: int | str) -> list[int]:
    """``n`` distinct seeds for parametrized loops, offset by the knob.

    With ``REPRO_SEED`` unset this is ``range(n)`` (the historical
    seeds, so checked-in expectations keep holding); any other value
    shifts the whole family onto a fresh deterministic stream.
    """
    base = base_seed()
    if base == 0:
        return list(range(n))
    rng = random.Random(derive("seed-sequence", *tags))
    return [rng.randrange(1 << 30) for _ in range(n)]
